"""``repro-optimize`` — optimize a query from a JSON document or generator.

Examples::

    # Optimize a hand-written query document:
    repro-optimize --query my_query.json

    # Generate a workload query and optimize it:
    repro-optimize --family cyclic --relations 10 --seed 7

    # Pick algorithms and inspect the machine-readable plan:
    repro-optimize --family clique --relations 8 \
        --enumerator mincut_branch --pruning apcb --json

    # Anytime optimization: bound the run and degrade gracefully instead
    # of running forever on a hard query:
    repro-optimize --family clique --relations 14 \
        --deadline-ms 100 --resilient
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.bench.harness import PAPER_ALGORITHMS
from repro.core.optimizer import algorithm_label, optimize, run_dpccp
from repro.cost.cout import CoutCostModel
from repro.cost.haas import HaasCostModel
from repro.errors import ReproError
from repro.io import load_query, plan_to_dict
from repro.partitioning.registry import available_partitionings
from repro.resilience import Budget, ResilientOptimizer
from repro.workload.generator import generate_query

__all__ = ["main"]

#: ``--cost-model`` choice -> factory.
_COST_MODELS = {"haas": HaasCostModel, "cout": CoutCostModel}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-optimize",
        description="Find an optimal bushy join order with top-down "
        "enumeration and APCBI pruning (ICDE 2012 reproduction).",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--query", type=Path, help="path to a JSON query document (see repro.io)"
    )
    source.add_argument(
        "--family",
        choices=["chain", "star", "cycle", "clique", "acyclic", "cyclic"],
        help="generate a workload query of this graph family instead",
    )
    parser.add_argument(
        "--relations", type=int, default=10, help="size of the generated query"
    )
    parser.add_argument("--seed", type=int, default=None, help="generator seed")
    parser.add_argument(
        "--join-scheme",
        choices=["fk", "random"],
        default="fk",
        help="selectivity scheme for generated queries",
    )
    parser.add_argument(
        "--enumerator",
        choices=available_partitionings(),
        default="mincut_conservative",
    )
    parser.add_argument(
        "--pruning",
        choices=["none", "acb", "pcb", "apcb", "apcbi", "apcbi_opt", "dpconv"],
        default="apcbi",
        help="pruning policy; 'dpconv' selects the subset-convolution "
        "fast path (falls back to DPccp outside its envelope)",
    )
    parser.add_argument(
        "--cost-model",
        choices=["haas", "cout"],
        default="haas",
        help="cost model: 'haas' (the paper's, default) or 'cout' "
        "(output-cardinality; required for the DPconv fast path)",
    )
    parser.add_argument(
        "--heuristic",
        choices=["goo", "quickpick", "min_selectivity", "ikkbz"],
        default="goo",
        help="join heuristic for APCBI's upper bounds",
    )
    parser.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        metavar="MS",
        help="wall-clock budget for the optimization (anytime mode)",
    )
    parser.add_argument(
        "--max-expansions",
        type=int,
        default=None,
        metavar="N",
        help="cap on enumeration expansions (anytime mode)",
    )
    parser.add_argument(
        "--resilient",
        action="store_true",
        help="degrade to a heuristic plan instead of failing when the "
        "budget runs out; prints the degradation report",
    )
    parser.add_argument(
        "--via-service",
        action="store_true",
        help="route the optimization through a one-worker "
        "repro.service.OptimizationService (admission queue, retries, "
        "circuit breakers) and report the serving metadata",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=0,
        metavar="N",
        help="with --via-service: serve through a sharded deployment of "
        "N supervised shard processes (consistent-hash routing, crash "
        "fail-over) instead of a single in-process service",
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help="cross-check the optimal cost against DPccp",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit a machine-readable JSON result instead of text",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="arm telemetry and write the optimization's span tree(s) "
        "to PATH as JSONL",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="print the telemetry metric exposition after the result",
    )
    return parser


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    budget = None
    if args.deadline_ms is not None or args.max_expansions is not None:
        budget = Budget(
            deadline_seconds=(
                args.deadline_ms / 1000.0 if args.deadline_ms is not None else None
            ),
            max_expansions=args.max_expansions,
        )
    telemetry = None
    sink = None
    if args.trace is not None or args.metrics:
        from repro.telemetry import MetricRegistry, Telemetry, Tracer, TraceSink

        sink = TraceSink(args.trace) if args.trace is not None else None
        telemetry = Telemetry(
            registry=MetricRegistry(), tracer=Tracer(sink=sink)
        )
    cost_model_factory = _COST_MODELS[args.cost_model]
    if args.via_service and cost_model_factory is not HaasCostModel:
        print(
            "error: --via-service always prices with the Haas model; "
            "drop --cost-model",
            file=sys.stderr,
        )
        return 1
    report = None
    service_meta = None
    try:
        if args.query is not None:
            query = load_query(args.query)
        else:
            query = generate_query(
                args.family, args.relations, seed=args.seed,
                join_scheme=args.join_scheme,
            )
        if args.via_service:
            # Serving path: the same stack the service's workers run, plus
            # admission/retry/breaker metadata in the output.  --shards N
            # swaps in the multi-process sharded deployment.
            deadline_seconds = (
                args.deadline_ms / 1000.0
                if args.deadline_ms is not None
                else None
            )
            if args.shards > 0:
                from repro.service.sharded import ShardedService

                with ShardedService(
                    shards=args.shards,
                    enumerator=args.enumerator,
                    pruning=args.pruning,
                    heuristic=args.heuristic,
                    workers_per_shard=1,
                    telemetry=telemetry,
                ) as service:
                    response = service.optimize(
                        query, deadline_seconds=deadline_seconds
                    )
            else:
                from repro.service import OptimizationService

                with OptimizationService(
                    enumerator=args.enumerator,
                    pruning=args.pruning,
                    heuristic=args.heuristic,
                    workers=1,
                    telemetry=telemetry,
                ) as service:
                    response = service.optimize(
                        query, deadline_seconds=deadline_seconds
                    )
            if not response.ok:
                print(
                    f"error: service returned {response.status}: "
                    f"{response.error}",
                    file=sys.stderr,
                )
                return 1
            service_meta = {
                "attempts": response.attempts,
                "retries": response.retries,
                "breaker_waits": response.breaker_waits,
                "queue_wait_seconds": response.queue_wait_seconds,
                "service_seconds": response.service_seconds,
            }
            if args.shards > 0:
                service_meta["shard"] = response.shard
            resilient = response.result
            report = resilient.report
            label = algorithm_label(args.enumerator, args.pruning)
            if report.degraded:
                label = f"{label} (degraded: {report.rung})"
            label = f"{label} [via service]"
            plan, cost = resilient.plan, resilient.cost
            elapsed, stats = resilient.elapsed, resilient.stats
        elif args.resilient:
            resilient = ResilientOptimizer(
                enumerator=args.enumerator,
                pruning=args.pruning,
                cost_model_factory=cost_model_factory,
                heuristic=args.heuristic,
                telemetry=telemetry,
            ).optimize(query, budget=budget)
            report = resilient.report
            label = algorithm_label(args.enumerator, args.pruning)
            if report.degraded:
                label = f"{label} (degraded: {report.rung})"
            plan, cost = resilient.plan, resilient.cost
            elapsed, stats = resilient.elapsed, resilient.stats
        else:
            result = optimize(
                query,
                enumerator=args.enumerator,
                pruning=args.pruning,
                cost_model_factory=cost_model_factory,
                heuristic=args.heuristic,
                budget=budget,
                telemetry=telemetry,
            )
            label, plan, cost = result.label, result.plan, result.cost
            elapsed, stats = result.elapsed, result.stats
    except (ReproError, OSError, json.JSONDecodeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    verified = None
    if args.verify and (report is None or not report.degraded):
        # The cross-check must price with the same model as the main run.
        baseline = run_dpccp(query, cost_model_factory=cost_model_factory)
        verified = abs(cost - baseline.cost) <= 1e-6 * max(1.0, baseline.cost)

    if args.json:
        payload = {
            "algorithm": label,
            "cost": cost,
            "elapsed_seconds": elapsed,
            "plan": plan_to_dict(plan),
            "stats": stats.as_dict(),
        }
        if report is not None:
            payload["degradation"] = {
                "rung": report.rung,
                "degraded": report.degraded,
                "attempts": [attempt.format() for attempt in report.attempts],
                "budget": report.budget,
            }
        if service_meta is not None:
            payload["service"] = service_meta
        if verified is not None:
            payload["verified_against_dpccp"] = verified
        print(json.dumps(payload, indent=2))
    else:
        print(f"query      : {query.describe()}")
        print(f"algorithm  : {label}")
        print(f"cost       : {cost:,.2f}")
        print(f"elapsed    : {elapsed * 1000:.2f} ms")
        print(f"plan       : {plan.sexpr()}")
        print()
        print(plan.explain())
        if service_meta is not None:
            print(
                f"service    : {service_meta['attempts']} attempt(s), "
                f"{service_meta['retries']} retries, "
                f"queue wait {service_meta['queue_wait_seconds'] * 1000:.2f} ms"
            )
        if report is not None:
            print()
            print(report.describe())
        if verified is not None:
            print()
            print(f"verified against DPccp: {'OK' if verified else 'MISMATCH'}")

    if telemetry is not None:
        if args.metrics:
            if not args.via_service:
                # The service already published its counters via the
                # response path; direct runs publish their stats here.
                from repro.telemetry.adapters import publish_optimization_stats

                publish_optimization_stats(telemetry.registry, stats)
            print()
            print(telemetry.registry.expose_text(), end="")
        if sink is not None:
            sink.close()
            print(
                f"wrote {sink.written} trace(s) to {args.trace}",
                file=sys.stderr,
            )

    if verified is False:
        return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
