"""``repro-optimize`` — optimize a query from a JSON document or generator.

Examples::

    # Optimize a hand-written query document:
    repro-optimize --query my_query.json

    # Generate a workload query and optimize it:
    repro-optimize --family cyclic --relations 10 --seed 7

    # Pick algorithms and inspect the machine-readable plan:
    repro-optimize --family clique --relations 8 \
        --enumerator mincut_branch --pruning apcb --json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.bench.harness import PAPER_ALGORITHMS
from repro.core.optimizer import optimize, run_dpccp
from repro.errors import ReproError
from repro.io import load_query, plan_to_dict
from repro.partitioning.registry import available_partitionings
from repro.workload.generator import generate_query

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-optimize",
        description="Find an optimal bushy join order with top-down "
        "enumeration and APCBI pruning (ICDE 2012 reproduction).",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--query", type=Path, help="path to a JSON query document (see repro.io)"
    )
    source.add_argument(
        "--family",
        choices=["chain", "star", "cycle", "clique", "acyclic", "cyclic"],
        help="generate a workload query of this graph family instead",
    )
    parser.add_argument(
        "--relations", type=int, default=10, help="size of the generated query"
    )
    parser.add_argument("--seed", type=int, default=None, help="generator seed")
    parser.add_argument(
        "--join-scheme",
        choices=["fk", "random"],
        default="fk",
        help="selectivity scheme for generated queries",
    )
    parser.add_argument(
        "--enumerator",
        choices=available_partitionings(),
        default="mincut_conservative",
    )
    parser.add_argument(
        "--pruning",
        choices=["none", "acb", "pcb", "apcb", "apcbi", "apcbi_opt"],
        default="apcbi",
    )
    parser.add_argument(
        "--heuristic",
        choices=["goo", "quickpick", "min_selectivity", "ikkbz"],
        default="goo",
        help="join heuristic for APCBI's upper bounds",
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help="cross-check the optimal cost against DPccp",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit a machine-readable JSON result instead of text",
    )
    return parser


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.query is not None:
            query = load_query(args.query)
        else:
            query = generate_query(
                args.family, args.relations, seed=args.seed,
                join_scheme=args.join_scheme,
            )
        result = optimize(
            query,
            enumerator=args.enumerator,
            pruning=args.pruning,
            heuristic=args.heuristic,
        )
    except (ReproError, OSError, json.JSONDecodeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    verified = None
    if args.verify:
        baseline = run_dpccp(query)
        verified = abs(result.cost - baseline.cost) <= 1e-6 * max(
            1.0, baseline.cost
        )

    if args.json:
        payload = {
            "algorithm": result.label,
            "cost": result.cost,
            "elapsed_seconds": result.elapsed,
            "plan": plan_to_dict(result.plan),
            "stats": result.stats.as_dict(),
        }
        if verified is not None:
            payload["verified_against_dpccp"] = verified
        print(json.dumps(payload, indent=2))
    else:
        print(f"query      : {query.describe()}")
        print(f"algorithm  : {result.label}")
        print(f"cost       : {result.cost:,.2f}")
        print(f"elapsed    : {result.elapsed * 1000:.2f} ms")
        print(f"plan       : {result.plan.sexpr()}")
        print()
        print(result.explain())
        if verified is not None:
            print()
            print(f"verified against DPccp: {'OK' if verified else 'MISMATCH'}")

    if verified is False:
        return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
