#!/usr/bin/env python
"""Deep dive: how each pruning strategy reshapes the search.

Optimizes one explosive random-join cyclic query (the workload shape where
branch-and-bound shines, §V-B) with every pruning strategy of the paper
and prints a side-by-side comparison of runtimes and search-space
counters, including a per-advancement ablation of APCBI (§IV-D).

Run with::

    python examples/pruning_deep_dive.py
"""

from repro import AdvancementConfig, generate_query, optimize, run_dpccp
from repro.core.advancements import ADVANCEMENT_NAMES

PRUNINGS = ["none", "pcb", "acb", "apcb", "apcbi", "apcbi_opt"]


def main() -> None:
    query = generate_query("cyclic", 10, seed=99, join_scheme="random")
    print(f"Query: {query.describe()} (random-join selectivities)\n")

    baseline = run_dpccp(query)
    print(
        f"DPccp baseline: {baseline.elapsed * 1000:7.1f} ms, "
        f"{baseline.stats.plan_classes_built} plan classes, "
        f"{baseline.stats.ccps_enumerated} ccps\n"
    )

    header = (
        f"{'pruning':<12}{'normed time':>12}{'classes':>9}{'failed':>8}"
        f"{'ccps enum':>11}{'priced':>8}{'PCB cut':>9}"
    )
    print(header)
    print("-" * len(header))
    for pruning in PRUNINGS:
        result = optimize(query, pruning=pruning)
        assert abs(result.cost - baseline.cost) <= 1e-6 * baseline.cost
        stats = result.stats
        print(
            f"{pruning:<12}{result.elapsed / baseline.elapsed:>11.3f}x"
            f"{stats.plan_classes_built:>9}{stats.failed_builds:>8}"
            f"{stats.ccps_enumerated:>11}{stats.ccps_considered:>8}"
            f"{stats.pcb_prunes:>9}"
        )

    print("\nAPCBI ablation (one advancement at a time on top of APCB):")
    print(f"{'advancement':<24}{'normed time':>12}{'classes':>9}")
    for name in ADVANCEMENT_NAMES:
        result = optimize(
            query, pruning="apcbi", config=AdvancementConfig.only(name)
        )
        assert abs(result.cost - baseline.cost) <= 1e-6 * baseline.cost
        print(
            f"{name:<24}{result.elapsed / baseline.elapsed:>11.3f}x"
            f"{result.stats.plan_classes_built:>9}"
        )

    full = optimize(query, pruning="apcbi")
    print(
        f"{'ALL SIX (APCBI)':<24}{full.elapsed / baseline.elapsed:>11.3f}x"
        f"{full.stats.plan_classes_built:>9}"
    )


if __name__ == "__main__":
    main()
