#!/usr/bin/env python
"""Complex join predicates with the hypergraph optimizer.

The paper's enumeration algorithms handle binary join predicates; the
follow-up research line generalizes to *hyperedges* — predicates over
more than two relations, such as ``R0.a = R1.b + R2.c``.  This example
shows how such a predicate constrains the plan space: the relations on
one side of the hyperedge must be joined together before the predicate
becomes applicable.

Run with::

    python examples/complex_predicates.py
"""

from repro.hyper import Hyperedge, Hypergraph, HyperDP

# Five relations; vertex i is bit 1 << i.
PARTS, SUPPLIERS, ORDERS, RATES, TAXES = (1 << i for i in range(5))

NAMES = {0: "parts", 1: "suppliers", 2: "orders", 3: "rates", 4: "taxes"}


def main() -> None:
    # Simple equality predicates plus one 3-way hyperedge:
    #   orders.total = rates.factor * taxes.rate
    # which references {rates, taxes} jointly against orders.
    hypergraph = Hypergraph(
        5,
        [
            Hyperedge(PARTS, SUPPLIERS),          # parts - suppliers
            Hyperedge(SUPPLIERS, ORDERS),         # suppliers - orders
            Hyperedge(RATES, TAXES),              # rates - taxes
            Hyperedge(ORDERS, RATES | TAXES),     # the complex predicate
        ],
    )

    # A toy cost: joining a pair costs the size of the result class,
    # with the complex predicate making big intermediates pricey.
    class_weight = {
        PARTS: 200.0, SUPPLIERS: 50.0, ORDERS: 1000.0,
        RATES: 10.0, TAXES: 10.0,
    }

    def join_cost(left: int, right: int) -> float:
        total = 0.0
        combined = left | right
        for vertex_bit, weight in class_weight.items():
            if combined & vertex_bit:
                total += weight
        return total

    optimizer = HyperDP(hypergraph, join_cost)
    plan = optimizer.run()

    print("Hypergraph query with a 3-way predicate")
    print("  orders.total = rates.factor * taxes.rate\n")
    print(f"Optimal plan : {plan.sexpr()}")
    print(f"Optimal cost : {plan.cost:,.0f}")
    print(f"Plan classes : {optimizer.n_plan_classes()}\n")

    # The structural consequence of the hyperedge: {rates, taxes} must be
    # joined with each other before orders can use the predicate, so the
    # class {orders, rates} alone is NOT even connected.
    assert not hypergraph.is_connected(ORDERS | RATES)
    assert hypergraph.is_connected(RATES | TAXES)
    assert (RATES | TAXES) in optimizer.memo
    print(
        "Note: {orders, rates} is not a connected class — the 3-way "
        "predicate\nonly applies once rates and taxes are joined, and the "
        "optimizer's plan\nrespects that automatically."
    )


if __name__ == "__main__":
    main()
