#!/usr/bin/env python
"""End-to-end: optimize a query, materialize data, run the plan.

The optimizer chooses join orders from *estimates*; this example closes
the loop with the execution substrate (`repro.exec`): it synthesizes
tables whose join behaviour matches the catalog, executes the optimal
plan with hash joins, checks that a completely different join tree
computes the identical result, and compares estimated against actual
intermediate cardinalities.

Run with::

    python examples/execute_optimal_plan.py
"""

from repro import Catalog, Query, QueryGraph, RelationStats, optimize
from repro.exec import (
    execute_plan,
    result_signature,
    synthesize,
    validate_estimates,
)
from repro.graph import bitset


def build_snowflake() -> Query:
    """A small TPC-H-flavoured snowflake, pure foreign-key joins.

    Foreign-key joins keep every intermediate result at the fact table's
    cardinality (§V-B), so the executed result is non-degenerate and the
    estimates are exact by construction — a readable end-to-end demo.
    """
    lineitem, orders, customer, product, nation = range(5)
    cards = [3000.0, 600.0, 150.0, 120.0, 10.0]
    names = ["lineitem", "orders", "customer", "product", "nation"]
    graph = QueryGraph(
        5,
        [
            (lineitem, orders),     # lineitem.o_id -> orders
            (orders, customer),     # orders.c_id  -> customer
            (lineitem, product),    # lineitem.p_id -> product
            (customer, nation),     # customer.n_id -> nation
        ],
    )
    relations = [
        RelationStats(cardinality=cards[i], tuple_width=80, name=names[i])
        for i in range(5)
    ]
    selectivities = {
        (lineitem, orders): 1.0 / cards[orders],
        (orders, customer): 1.0 / cards[customer],
        (lineitem, product): 1.0 / cards[product],
        (customer, nation): 1.0 / cards[nation],
    }
    return Query(graph=graph, catalog=Catalog(relations, selectivities))


def main() -> None:
    query = build_snowflake()
    database = synthesize(query, row_budget=4000, seed=1)
    sizes = [table.n_rows for table in database.tables]
    print("Query: snowflake(lineitem, orders, customer, product, nation)")
    print(f"Materialized table sizes (scaled): {sizes}\n")

    # Optimize against the scaled statistics that match the data.
    optimal = optimize(database.scaled_query, pruning="apcbi")
    print(f"Optimal plan ({optimal.label}): {optimal.plan.sexpr()}")
    print(f"Estimated cost: {optimal.cost:,.0f} page I/Os\n")

    execution = execute_plan(optimal.plan, database)
    print(f"Executed with hash joins: {execution.n_rows} result rows")

    # A very different tree must compute exactly the same result.
    alternative = optimize(
        database.scaled_query, enumerator="mincut_lazy", pruning="none"
    )
    alt_execution = execute_plan(alternative.plan, database)
    same = result_signature(execution.rows) == result_signature(
        alt_execution.rows
    )
    print(
        f"Alternative tree {alternative.plan.sexpr()} -> "
        f"{alt_execution.n_rows} rows; identical result: {same}\n"
    )
    assert same

    print("Estimated vs actual intermediate cardinalities:")
    report = validate_estimates(optimal.plan, database)
    for vertex_set, (estimated, actual) in sorted(report.items()):
        if vertex_set & (vertex_set - 1):  # skip base relations
            print(
                f"  {bitset.format_set(vertex_set):<28} "
                f"est={estimated:12.1f}  actual={actual}"
            )
    print("\nAll checked classes within statistical tolerance.")


if __name__ == "__main__":
    main()
