#!/usr/bin/env python
"""Data-warehouse scenario: a hand-built star-schema query.

The paper's introduction motivates join ordering with declarative SQL over
many tables; the classic hard case for a cost-based optimizer is a star
schema — one large fact table joined with several dimensions.  This
example builds such a query by hand (no random generator): a SALES fact
table with five dimensions, realistic cardinalities and foreign-key
selectivities, then shows

* the optimal plan found by TDMcC_APCBI,
* why pruning has little to bite on when all joins are foreign-key joins
  with strong filters absent (the §V-B observation that made the paper
  disable pruning via star selectivities), and
* how a selective dimension changes the picture.

Run with::

    python examples/star_schema_dwh.py
"""

from repro import Catalog, Query, QueryGraph, RelationStats, optimize, run_dpccp

# Relation indices.
SALES, DATE, STORE, PRODUCT, CUSTOMER, PROMOTION = range(6)

NAMES = ["sales", "date_dim", "store", "product", "customer", "promotion"]
CARDINALITIES = [6_000_000, 2_500, 400, 20_000, 100_000, 300]


def build_query(promotion_filter: float = 1.0) -> Query:
    """A star query: SALES joins every dimension on its foreign key.

    ``promotion_filter`` scales the promotion dimension down, emulating a
    WHERE predicate (e.g. only holiday promotions); values below one make
    the promotion join selective and give the optimizer real choices.
    """
    graph = QueryGraph(6, [(SALES, d) for d in range(1, 6)])
    relations = [
        RelationStats(
            cardinality=max(1.0, CARDINALITIES[i] * (promotion_filter if i == PROMOTION else 1.0)),
            tuple_width=120 if i == SALES else 60,
            domain_sizes=(CARDINALITIES[i],),
            name=NAMES[i],
        )
        for i in range(6)
    ]
    # Foreign-key joins: |sales >< dim| = |sales| * |dim| * (1/|dim|).
    selectivities = {
        (SALES, dim): 1.0 / CARDINALITIES[dim] for dim in range(1, 6)
    }
    return Query(graph=graph, catalog=catalog_of(relations, selectivities))


def catalog_of(relations, selectivities) -> Catalog:
    return Catalog(relations, selectivities)


def report(title: str, query: Query) -> None:
    result = optimize(query, enumerator="mincut_conservative", pruning="apcbi")
    baseline = run_dpccp(query)
    assert abs(result.cost - baseline.cost) <= 1e-6 * baseline.cost
    print(f"--- {title}")
    print(f"optimal cost : {result.cost:,.0f} page I/Os")
    print(f"join order   : {result.plan.sexpr()}")
    print(
        f"classes built: {result.stats.plan_classes_built} of "
        f"{baseline.stats.plan_classes_built} (DPccp)"
    )
    print()


def main() -> None:
    print("Star-schema join ordering with top-down enumeration + APCBI\n")

    # Unfiltered: every join preserves |sales|; plans barely differ, and
    # pruning cannot skip much of the search space.
    report("all dimensions unfiltered", build_query())

    # A selective promotion filter (0.1% of promotions qualify): joining
    # promotion first shrinks the fact table early, so plan costs spread
    # out and branch-and-bound pruning starts to pay off.
    filtered = build_query(promotion_filter=0.001)
    report("promotion filtered to 0.1%", filtered)

    result = optimize(filtered, pruning="apcbi")
    print(
        "Note how the optimizer now joins the filtered promotion dimension "
        "directly with the fact table at the bottom of the plan:"
    )
    print(f"  {result.plan.sexpr()}")
    # The innermost join of the plan must combine sales with the filtered
    # promotion dimension (the classic "most selective join first" shape).
    from repro.plans.join_tree import JoinNode

    join_sets = set()
    stack = [result.plan]
    while stack:
        node = stack.pop()
        if isinstance(node, JoinNode):
            join_sets.add(node.vertex_set)
            stack.extend((node.left, node.right))
    assert (1 << SALES) | (1 << PROMOTION) in join_sets


if __name__ == "__main__":
    main()
