#!/usr/bin/env python
"""Quickstart: optimize one query and inspect the plan.

Generates a 10-relation random acyclic query with Steinbrunn-style
statistics, optimizes it with the paper's best combination
(MinCutConservative enumeration + APCBI pruning), and compares the result
against the bottom-up DPccp baseline.

Run with::

    python examples/quickstart.py
"""

from repro import optimize, random_acyclic_query, run_dpccp


def main() -> None:
    query = random_acyclic_query(10, seed=42)
    print(f"Query: {query.describe()}")
    print(f"Join edges: {sorted(query.graph.edges)}")
    print()

    # The paper's headline algorithm: TDMcC_APCBI.
    result = optimize(
        query, enumerator="mincut_conservative", pruning="apcbi"
    )
    print(f"Algorithm     : {result.label}")
    print(f"Optimal cost  : {result.cost:,.2f} page I/Os")
    print(f"Elapsed       : {result.elapsed * 1000:.2f} ms")
    print(f"Plan shape    : {result.plan.sexpr()}")
    print()
    print("Operator tree:")
    print(result.explain())
    print()

    # Cross-check against the bottom-up state of the art.
    baseline = run_dpccp(query)
    print(f"DPccp cost    : {baseline.cost:,.2f} (must match)")
    print(f"DPccp elapsed : {baseline.elapsed * 1000:.2f} ms")
    print(f"Normed time   : {result.elapsed / baseline.elapsed:.3f}x")
    print()

    # Pruning statistics: how much of the search space was skipped.
    stats = result.stats
    print("Pruning effect:")
    print(f"  plan classes built : {stats.plan_classes_built}"
          f" (DPccp builds {baseline.stats.plan_classes_built})")
    print(f"  ccps enumerated    : {stats.ccps_enumerated}")
    print(f"  ccps priced        : {stats.ccps_considered}")
    print(f"  PCB rejections     : {stats.pcb_prunes}")

    assert abs(result.cost - baseline.cost) <= 1e-6 * baseline.cost


if __name__ == "__main__":
    main()
