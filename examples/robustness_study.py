#!/usr/bin/env python
"""Robustness study: pruning behaviour across enumeration orders.

The paper's central robustness claim: different top-down enumerators
produce different enumeration orders, and APCB's pruning effectiveness
varies a lot with that order while APCBI's barely does.  This example
measures both pruning strategies under all three enumerators over a small
cyclic workload and prints the spread of the Table III counters.

Run with::

    python examples/robustness_study.py
"""

from repro import QueryGenerator, optimize, run_dpccp

ENUMERATORS = ["mincut_lazy", "mincut_branch", "mincut_conservative"]


def measure(queries, pruning):
    """Per-enumerator averages of the normed s/f counters."""
    per_enum = {}
    for enumerator in ENUMERATORS:
        success, failed, time_sum = 0.0, 0.0, 0.0
        for query, baseline in queries:
            result = optimize(query, enumerator=enumerator, pruning=pruning)
            assert abs(result.cost - baseline.cost) <= 1e-6 * baseline.cost
            classes = max(1, baseline.stats.plan_classes_built)
            success += result.stats.plan_classes_built / classes
            failed += result.stats.failed_builds / classes
            time_sum += result.elapsed / baseline.elapsed
        count = len(queries)
        per_enum[enumerator] = (
            success / count, failed / count, time_sum / count
        )
    return per_enum


def spread(values):
    return max(values) - min(values)


def main() -> None:
    generator = QueryGenerator(seed=7)
    queries = []
    for index in range(8):
        query = generator.generate(
            "cyclic", 9, "fk" if index % 2 == 0 else "random"
        )
        queries.append((query, run_dpccp(query)))
    print(f"Workload: {len(queries)} random cyclic queries, 9 relations\n")

    for pruning in ("apcb", "apcbi"):
        print(f"=== {pruning.upper()} ===")
        per_enum = measure(queries, pruning)
        print(f"{'enumerator':<22}{'avg_s':>8}{'avg_f':>8}{'normed t':>10}")
        for enumerator, (s, f, t) in per_enum.items():
            print(f"{enumerator:<22}{s:>8.3f}{f:>8.3f}{t:>9.3f}x")
        s_spread = spread([v[0] for v in per_enum.values()])
        f_spread = spread([v[1] for v in per_enum.values()])
        print(f"spread across enumerators: avg_s {s_spread:.3f}, "
              f"avg_f {f_spread:.3f}\n")

    print(
        "APCBI's counters vary less across enumeration orders than APCB's —\n"
        "the paper's robustness property (§V-D: 'its pruning efficiency is\n"
        "less dependent on the enumeration strategy used')."
    )


if __name__ == "__main__":
    main()
