#!/usr/bin/env python
"""Worst-case showcase: APCB's re-enumeration cascade vs APCBI's fix.

§IV-D (fourth advancement) describes ACB's pathology: a plan class gets
re-requested with slightly higher budgets over and over, re-enumerating
its ccps each time without ever building a plan.  This example hunts a
small workload for the query where APCB re-enumerates the most, then shows
how APCBI's rising budget + improved lower bounds collapse the cascade.

Run with::

    python examples/worst_case_showcase.py
"""

from repro import AdvancementConfig, QueryGenerator, optimize, run_dpccp


def cascade_factor(query, baseline, pruning, config=None):
    """ccps enumerated relative to DPccp's single full enumeration."""
    result = optimize(query, pruning=pruning, config=config)
    assert abs(result.cost - baseline.cost) <= 1e-6 * baseline.cost
    return (
        result.stats.ccps_enumerated / max(1, baseline.stats.ccps_enumerated),
        result.elapsed / baseline.elapsed,
        result.stats.failed_builds,
    )


def main() -> None:
    generator = QueryGenerator(seed=2012)
    print("Scanning 12 cyclic queries for APCB's worst re-enumeration...\n")

    worst = None
    for index in range(12):
        query = generator.generate(
            "cyclic", 9, "fk" if index % 2 == 0 else "random"
        )
        baseline = run_dpccp(query)
        ratio, normed, failed = cascade_factor(query, baseline, "apcb")
        if worst is None or ratio > worst[1]:
            worst = (query, ratio, baseline)

    query, ratio, baseline = worst
    print(f"Worst query: {query.describe()}")
    print(f"DPccp enumerates each ccp once: "
          f"{baseline.stats.ccps_enumerated} ccps\n")

    rows = [
        ("APCB", "apcb", None),
        ("APCB + rising budget", "apcbi", AdvancementConfig.only("rising_budget")),
        (
            "APCB + improved lB",
            "apcbi",
            AdvancementConfig.only("improved_lower_bounds"),
        ),
        ("APCBI (all six)", "apcbi", None),
    ]
    header = f"{'configuration':<24}{'ccps / DPccp':>13}{'normed t':>10}{'failed':>8}"
    print(header)
    print("-" * len(header))
    for label, pruning, config in rows:
        ratio, normed, failed = cascade_factor(query, baseline, pruning, config)
        print(f"{label:<24}{ratio:>13.2f}{normed:>9.3f}x{failed:>8}")

    print(
        "\nAPCB re-enumerates the same plan classes repeatedly (ratio well"
        "\nabove 1); the rising budget alone collapses most of the cascade,"
        "\nand full APCBI keeps enumeration near DPccp's single pass —"
        "\nthe paper's two-orders-of-magnitude worst-case improvement."
    )

    # Per-class view of the cascade, via the enumeration profiler.
    from repro.bench.profiling import InstrumentedPartitioning
    from repro.core.apcb import ApcbPlanGenerator
    from repro.cost import HaasCostModel
    from repro.partitioning import MinCutConservative

    instrumented = InstrumentedPartitioning(MinCutConservative())
    ApcbPlanGenerator(query, instrumented, HaasCostModel()).run()
    print("\nAPCB's worst re-enumerated plan classes:")
    print(instrumented.profile.render(limit=6))


if __name__ == "__main__":
    main()
