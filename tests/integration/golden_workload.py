"""The seeded equivalence workload and its golden-output capture.

The context refactor must be *observationally invisible*: every pruning
variant and DPccp must return bit-identical plans and costs before and
after moving onto :class:`repro.context.OptimizationContext`.  This module
defines the seeded chain/star/cycle/clique workload the equivalence test
runs, and can be executed as a script to (re)capture the golden outputs::

    PYTHONPATH=src:tests python tests/integration/golden_workload.py

The resulting ``golden_plans.json`` was captured on the pre-refactor tree
(commit a02e55e) and re-captured when the memo's deterministic
(cost, fingerprint) tie-break landed — every re-captured cost was verified
bit-identical to the previous capture; only equal-cost tie winners moved.
Regenerate it only when an intentional behavior change is being made,
never to paper over a regression.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Tuple

from repro.core.optimizer import Optimizer, run_dpccp
from repro.query import Query
from repro.workload.generator import QueryGenerator

GOLDEN_PATH = Path(__file__).resolve().parent / "golden_plans.json"

#: (family, sizes) kept small enough that all six algorithms finish the
#: whole workload in seconds of pure-Python time.
FAMILIES: Tuple[Tuple[str, Tuple[int, ...]], ...] = (
    ("chain", (4, 6, 8, 10)),
    ("star", (4, 5, 6, 7)),
    ("cycle", (4, 6, 8)),
    ("clique", (4, 5, 6)),
)

#: Every pruning variant of the paper plus the bottom-up baseline.
PRUNINGS: Tuple[str, ...] = ("none", "acb", "pcb", "apcb", "apcbi")

SEED = 20120401


def golden_queries() -> List[Query]:
    """The deterministic query list (per-family seeded generators)."""
    queries: List[Query] = []
    for family, sizes in FAMILIES:
        generator = QueryGenerator(seed=SEED + sum(map(ord, family)))
        for index, size in enumerate(sizes):
            scheme = "fk" if index % 2 == 0 else "random"
            queries.append(generator.generate(family, size, scheme))
    return queries


def capture(telemetry=None) -> Dict[str, Dict[str, List[object]]]:
    """Run the full matrix; returns ``{query: {algorithm: [cost, sexpr]}}``.

    Costs are stored via ``float.hex`` so the equivalence check is
    bit-exact, not merely within tolerance.  ``telemetry`` arms the
    instrumentation layer during the capture — the telemetry determinism
    test relies on armed and disarmed captures being identical.
    """
    outputs: Dict[str, Dict[str, List[object]]] = {}
    for query in golden_queries():
        row: Dict[str, List[object]] = {}
        baseline = run_dpccp(query, telemetry=telemetry)
        row["dpccp"] = [baseline.cost.hex(), baseline.plan.sexpr()]
        for pruning in PRUNINGS:
            result = Optimizer(
                pruning=pruning, telemetry=telemetry
            ).optimize(query)
            row[pruning] = [result.cost.hex(), result.plan.sexpr()]
        outputs[query.describe()] = row
    return outputs


if __name__ == "__main__":
    GOLDEN_PATH.write_text(json.dumps(capture(), indent=2) + "\n")
    print(f"wrote {GOLDEN_PATH}")
