"""Every example script must run to completion.

Examples are part of the public deliverable; a broken example is a broken
build. Each one runs in a subprocess with a generous timeout.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    assert len(EXAMPLES) >= 3, "the deliverable requires at least 3 examples"


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[path.stem for path in EXAMPLES]
)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, (
        f"{script.name} failed:\n--- stdout ---\n{completed.stdout[-2000:]}"
        f"\n--- stderr ---\n{completed.stderr[-2000:]}"
    )
    assert completed.stdout.strip(), f"{script.name} printed nothing"
