"""End-to-end integration tests exercising the public API."""

import pytest

import repro
from repro import (
    AdvancementConfig,
    Optimizer,
    Query,
    default_suite,
    optimize,
    random_acyclic_query,
    run_dpccp,
)


class TestQuickstartFlow:
    def test_readme_quickstart(self):
        query = random_acyclic_query(8, seed=42)
        result = optimize(
            query, enumerator="mincut_conservative", pruning="apcbi"
        )
        assert result.plan.vertex_set == query.graph.all_vertices
        assert result.cost > 0
        assert "Join" in result.explain()

    def test_version_exported(self):
        assert repro.__version__


class TestFullMatrixOnOneQuery:
    @pytest.mark.parametrize("enumerator", repro.available_partitionings())
    @pytest.mark.parametrize(
        "pruning", ["none", "acb", "pcb", "apcb", "apcbi", "apcbi_opt"]
    )
    def test_every_combination_is_optimal(self, enumerator, pruning):
        query = random_acyclic_query(7, seed=77)
        baseline = run_dpccp(query)
        result = optimize(query, enumerator=enumerator, pruning=pruning)
        assert result.cost == pytest.approx(baseline.cost)


class TestSuiteIntegration:
    def test_default_suite_queries_optimize(self):
        suite = default_suite(scale=0.4)
        queries = suite.queries("acyclic")[:2]
        optimizer = Optimizer(pruning="apcbi")
        for query in queries:
            baseline = run_dpccp(query)
            assert optimizer.optimize(query).cost == pytest.approx(baseline.cost)


class TestRobustnessAcrossEnumerators:
    def test_apcbi_counters_are_enumeration_order_insensitive(self):
        """The paper's robustness claim, in miniature: APCBI's success
        counter varies less across enumerators than APCB's failure
        counter does (the enumeration order matters less)."""
        query = repro.random_cyclic_query(9, seed=13)
        built = {}
        for enumerator in (
            "mincut_lazy", "mincut_branch", "mincut_conservative"
        ):
            result = optimize(query, enumerator=enumerator, pruning="apcbi")
            built[enumerator] = result.stats.plan_classes_built
        values = list(built.values())
        spread = (max(values) - min(values)) / max(1, max(values))
        assert spread < 0.6  # loose sanity bound; exact equality not expected


class TestRelabeledQueryEquivalence:
    def test_optimal_cost_invariant_under_renumbering(self):
        query = random_acyclic_query(7, seed=5)
        permutation = list(reversed(range(query.n_relations)))
        relabeled = query.relabel(permutation)
        assert run_dpccp(query).cost == pytest.approx(run_dpccp(relabeled).cost)
