"""Refactor-equivalence acceptance test (ISSUE acceptance criterion).

All five pruning variants and DPccp must produce bit-identical plans and
costs on the seeded chain/star/cycle/clique workload, compared against
``golden_plans.json`` captured on the pre-refactor tree (commit a02e55e)
— the context refactor is required to be observationally invisible.
Costs compare via ``float.hex``, so this is exact, not within-tolerance.
"""

import json

import pytest

from tests.integration.golden_workload import (
    GOLDEN_PATH,
    PRUNINGS,
    capture,
    golden_queries,
)


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module")
def current():
    return capture()


def test_workload_shape_matches_the_capture(golden):
    assert len(golden) == len(golden_queries())
    sample = next(iter(golden.values()))
    assert set(sample) == set(PRUNINGS) | {"dpccp"}


def test_all_algorithms_are_bit_identical_to_the_golden_capture(
    golden, current
):
    assert set(current) == set(golden)
    mismatches = []
    for name, want in golden.items():
        for algorithm, (cost_hex, sexpr) in want.items():
            got_cost, got_sexpr = current[name][algorithm]
            if got_cost != cost_hex or got_sexpr != sexpr:
                mismatches.append(
                    f"{name}/{algorithm}: cost {got_cost} vs {cost_hex}, "
                    f"plan {got_sexpr} vs {sexpr}"
                )
    assert not mismatches, "\n".join(mismatches)


def test_dpconv_is_bit_identical_to_dpccp_on_the_golden_workload():
    # DPconv's eligibility envelope is the C_out model, which is not the
    # capture's (Haas) model — so the fast path is checked against a fresh
    # DPccp run under C_out on the same 14 golden queries, cost compared
    # via float.hex: exact, not within-tolerance.
    from repro.core.optimizer import run_dpccp, run_dpconv
    from repro.cost.cout import CoutCostModel

    mismatches = []
    for query in golden_queries():
        reference = run_dpccp(query, cost_model_factory=CoutCostModel)
        fast = run_dpconv(query)
        if fast.cost.hex() != reference.cost.hex():
            mismatches.append(
                f"{query.describe()}: dpconv {fast.cost.hex()} vs "
                f"dpccp {reference.cost.hex()}"
            )
    assert not mismatches, "\n".join(mismatches)


def test_armed_telemetry_is_bit_identical_to_the_golden_capture(golden):
    # The telemetry determinism contract: arming metrics + tracing (with
    # the expensive per-partition spans on) must not perturb a single
    # plan or cost bit anywhere in the six-algorithm matrix.
    from repro.telemetry import MetricRegistry, Telemetry, Tracer

    telemetry = Telemetry(
        registry=MetricRegistry(), tracer=Tracer(), detailed_spans=True
    )
    armed = capture(telemetry=telemetry)
    mismatches = []
    for name, want in golden.items():
        for algorithm, (cost_hex, sexpr) in want.items():
            got_cost, got_sexpr = armed[name][algorithm]
            if got_cost != cost_hex or got_sexpr != sexpr:
                mismatches.append(f"{name}/{algorithm}")
    assert not mismatches, "\n".join(mismatches)
    # And the instrumentation actually observed the runs.
    assert telemetry.tracer.finished_spans()
