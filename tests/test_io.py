"""Tests for query/plan JSON (de)serialization."""

import json

import pytest
from hypothesis import given

from repro.core.optimizer import optimize
from repro.errors import CatalogError
from repro.io import (
    load_query,
    plan_to_dict,
    query_from_dict,
    query_to_dict,
    save_query,
)
from tests.conftest import small_queries


class TestRoundTrip:
    @given(query=small_queries(max_n=6))
    def test_dict_round_trip(self, query):
        rebuilt = query_from_dict(query_to_dict(query))
        assert rebuilt.graph == query.graph
        assert rebuilt.catalog.selectivities == query.catalog.selectivities
        assert rebuilt.family == query.family
        assert rebuilt.seed == query.seed

    def test_file_round_trip(self, small_query, tmp_path):
        path = tmp_path / "query.json"
        save_query(small_query, path)
        rebuilt = load_query(path)
        assert rebuilt.graph == small_query.graph
        # the file is valid, pretty-printed JSON
        payload = json.loads(path.read_text())
        assert "relations" in payload and "joins" in payload

    def test_round_trip_preserves_optimal_cost(self, cyclic_query):
        rebuilt = query_from_dict(query_to_dict(cyclic_query))
        assert optimize(rebuilt).cost == pytest.approx(
            optimize(cyclic_query).cost
        )


class TestNamedEndpoints:
    def test_joins_may_reference_relation_names(self):
        payload = {
            "relations": [
                {"name": "orders", "cardinality": 1000},
                {"name": "customers", "cardinality": 100},
            ],
            "joins": [
                {"left": "orders", "right": "customers", "selectivity": 0.01}
            ],
        }
        query = query_from_dict(payload)
        assert query.catalog.selectivity(0, 1) == 0.01
        assert query.catalog.relation(0).name == "orders"

    def test_unknown_name_rejected(self):
        payload = {
            "relations": [{"name": "a", "cardinality": 10}],
            "joins": [{"left": "a", "right": "ghost", "selectivity": 0.5}],
        }
        with pytest.raises(CatalogError, match="ghost"):
            query_from_dict(payload)

    def test_duplicate_names_rejected(self):
        payload = {
            "relations": [
                {"name": "a", "cardinality": 10},
                {"name": "a", "cardinality": 20},
            ],
            "joins": [{"left": 0, "right": 1, "selectivity": 0.5}],
        }
        with pytest.raises(CatalogError, match="duplicate"):
            query_from_dict(payload)


class TestValidation:
    def test_missing_sections_rejected(self):
        with pytest.raises(CatalogError, match="relations"):
            query_from_dict({"joins": []})
        with pytest.raises(CatalogError, match="joins"):
            query_from_dict({"relations": [{"cardinality": 1}]})

    def test_empty_relations_rejected(self):
        with pytest.raises(CatalogError, match="no relations"):
            query_from_dict({"relations": [], "joins": []})

    def test_out_of_range_index_rejected(self):
        payload = {
            "relations": [{"cardinality": 10}],
            "joins": [{"left": 0, "right": 5, "selectivity": 0.5}],
        }
        with pytest.raises(CatalogError, match="out of range"):
            query_from_dict(payload)


class TestPlanSerialization:
    def test_plan_to_dict_structure(self, small_query):
        result = optimize(small_query)
        payload = plan_to_dict(result.plan)
        assert payload["total_cost"] == result.cost
        assert "join" in payload

        def count_scans(node):
            if "scan" in node:
                return 1
            return count_scans(node["join"]["left"]) + count_scans(
                node["join"]["right"]
            )

        assert count_scans(payload) == small_query.n_relations

    def test_plan_dict_is_json_serializable(self, small_query):
        result = optimize(small_query)
        json.dumps(plan_to_dict(result.plan))
