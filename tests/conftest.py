"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, settings, strategies as st

from repro.graph import generators
from repro.graph.query_graph import QueryGraph
from repro.workload.generator import QueryGenerator

# Keep hypothesis deterministic-ish and fast for CI-style runs.
settings.register_profile(
    "repro",
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


# ----------------------------------------------------------------------
# Hypothesis strategies
# ----------------------------------------------------------------------


@st.composite
def connected_graphs(draw, min_vertices: int = 2, max_vertices: int = 8):
    """Random connected query graphs: a random tree plus random extras."""
    n = draw(st.integers(min_vertices, max_vertices))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = random.Random(seed)
    edges = {(rng.randrange(i), i) for i in range(1, n)}
    extra = draw(st.integers(0, max(0, n * (n - 1) // 2 - len(edges))))
    for _ in range(extra):
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u != v:
            edges.add((min(u, v), max(u, v)))
    return QueryGraph(n, edges)


@st.composite
def small_queries(draw, families=("chain", "star", "cycle", "clique", "acyclic", "cyclic"),
                  min_n: int = 3, max_n: int = 7):
    """Random complete queries (graph + catalog) across all families."""
    family = draw(st.sampled_from(families))
    n = draw(st.integers(max(min_n, 3 if family in ("cycle", "cyclic") else min_n), max_n))
    seed = draw(st.integers(0, 2**31 - 1))
    scheme = draw(st.sampled_from(("fk", "random")))
    return QueryGenerator(seed=seed).generate(family, n, scheme)


# ----------------------------------------------------------------------
# Plain fixtures
# ----------------------------------------------------------------------


@pytest.fixture
def rng():
    return random.Random(1234)


@pytest.fixture
def chain5():
    return generators.chain_graph(5)


@pytest.fixture
def star5():
    return generators.star_graph(5)


@pytest.fixture
def cycle5():
    return generators.cycle_graph(5)


@pytest.fixture
def clique5():
    return generators.clique_graph(5)


@pytest.fixture
def generator():
    return QueryGenerator(seed=42)


@pytest.fixture
def small_query(generator):
    """A fixed 6-relation random acyclic query."""
    return generator.generate("acyclic", 6)


@pytest.fixture
def cyclic_query(generator):
    """A fixed 7-relation random cyclic query."""
    return generator.generate("cyclic", 7)
