"""Tests for join-tree validation."""

import pytest
from hypothesis import given

from repro.cost.haas import HaasCostModel
from repro.core.optimizer import optimize
from repro.plans.join_tree import JoinNode, LeafNode
from repro.plans.validation import (
    PlanValidationError,
    check_finite,
    recompute_cost,
    validate_plan,
)
from repro.cost.statistics import StatisticsProvider
from tests.conftest import small_queries


class TestAcceptsRealPlans:
    @given(query=small_queries(max_n=6))
    def test_optimizer_output_validates(self, query):
        result = optimize(query, pruning="apcbi")
        validate_plan(result.plan, query, HaasCostModel())

    def test_unpruned_output_validates(self, small_query):
        result = optimize(small_query, pruning="none")
        validate_plan(result.plan, small_query, HaasCostModel())


class TestRejectsBrokenPlans:
    def _leaves(self, query):
        return {
            i: LeafNode(i, query.catalog.cardinality(i))
            for i in range(query.n_relations)
        }

    def test_incomplete_plan_rejected(self, small_query):
        leaves = self._leaves(small_query)
        u, v = sorted(small_query.graph.edges)[0]
        partial = JoinNode(leaves[u], leaves[v], 10.0, 1.0)
        with pytest.raises(PlanValidationError, match="cover"):
            validate_plan(partial, small_query)

    def test_cross_product_rejected(self, generator):
        query = generator.generate("chain", 4)
        provider = StatisticsProvider(query)
        leaves = self._leaves(query)
        # Join R0 with R2: no edge in a chain.  Use correct cardinalities
        # so the cross-product check is the violation that fires.
        cross = JoinNode(
            leaves[0], leaves[2], provider.cardinality(0b0101), 1.0
        )
        inner = JoinNode(cross, leaves[1], provider.cardinality(0b0111), 1.0)
        plan = JoinNode(inner, leaves[3], provider.cardinality(0b1111), 1.0)
        with pytest.raises(PlanValidationError, match="cross product|disconnected"):
            validate_plan(plan, query)

    def test_wrong_leaf_cardinality_rejected(self, generator):
        query = generator.generate("chain", 2)
        wrong = LeafNode(0, query.catalog.cardinality(0) + 1)
        plan = JoinNode(
            wrong, LeafNode(1, query.catalog.cardinality(1)), 10.0, 1.0
        )
        with pytest.raises(PlanValidationError, match="cardinality"):
            validate_plan(plan, query)

    def test_wrong_cost_rejected(self, generator):
        query = generator.generate("chain", 2)
        provider = StatisticsProvider(query)
        plan = JoinNode(
            LeafNode(0, query.catalog.cardinality(0)),
            LeafNode(1, query.catalog.cardinality(1)),
            provider.cardinality(0b11),
            operator_cost=123456.0,  # made-up operator cost
        )
        with pytest.raises(PlanValidationError, match="cost"):
            validate_plan(plan, query, HaasCostModel())


class TestCheckFinite:
    def _two_way_plan(self, generator, cost=10.0, cardinality=None):
        query = generator.generate("chain", 2)
        provider = StatisticsProvider(query)
        if cardinality is None:
            cardinality = provider.cardinality(0b11)
        return JoinNode(
            LeafNode(0, query.catalog.cardinality(0)),
            LeafNode(1, query.catalog.cardinality(1)),
            cardinality,
            cost,
        )

    def test_real_plan_passes(self, small_query):
        check_finite(optimize(small_query).plan)

    @pytest.mark.parametrize("bogus", [float("nan"), float("inf")])
    def test_non_finite_cost_rejected(self, generator, bogus):
        with pytest.raises(PlanValidationError, match="non-finite cost"):
            check_finite(self._two_way_plan(generator, cost=bogus))

    def test_negative_cost_rejected(self, generator):
        with pytest.raises(PlanValidationError, match="negative cost"):
            check_finite(self._two_way_plan(generator, cost=-5.0))

    @pytest.mark.parametrize("bogus", [float("nan"), float("inf")])
    def test_non_finite_cardinality_rejected(self, generator, bogus):
        with pytest.raises(PlanValidationError, match="non-finite cardinality"):
            check_finite(self._two_way_plan(generator, cardinality=bogus))

    def test_poison_deep_in_the_tree_is_found(self, generator):
        query = generator.generate("chain", 3)
        provider = StatisticsProvider(query)
        poisoned = JoinNode(
            LeafNode(0, query.catalog.cardinality(0)),
            LeafNode(1, query.catalog.cardinality(1)),
            provider.cardinality(0b011),
            float("nan"),
        )
        plan = JoinNode(
            poisoned,
            LeafNode(2, query.catalog.cardinality(2)),
            provider.cardinality(0b111),
            1.0,
        )
        with pytest.raises(PlanValidationError, match="non-finite cost"):
            check_finite(plan)


class TestRecomputeCost:
    @given(query=small_queries(max_n=6))
    def test_matches_stored_costs_for_real_plans(self, query):
        result = optimize(query, pruning="none")
        provider = StatisticsProvider(query)
        recomputed = recompute_cost(result.plan, provider, HaasCostModel())
        assert recomputed == pytest.approx(result.cost, rel=1e-9)

    def test_leaf_costs_zero(self, small_query):
        provider = StatisticsProvider(small_query)
        leaf = LeafNode(0, small_query.catalog.cardinality(0))
        assert recompute_cost(leaf, provider, HaasCostModel()) == 0.0
