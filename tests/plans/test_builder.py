"""Tests for CREATETREE / BUILDTREE."""

import math

import pytest

from repro.cost.haas import HaasCostModel
from repro.cost.statistics import StatisticsProvider
from repro.plans.builder import PlanBuilder
from repro.plans.memo import MemoTable


@pytest.fixture
def builder(small_query):
    return PlanBuilder(StatisticsProvider(small_query), HaasCostModel())


@pytest.fixture
def leaves(builder, small_query):
    return [builder.leaf(small_query, i) for i in range(small_query.n_relations)]


def _joinable_pair(small_query, leaves):
    u, v = sorted(small_query.graph.edges)[0]
    return leaves[u], leaves[v]


class TestLeaf:
    def test_leaf_matches_catalog(self, builder, small_query):
        leaf = builder.leaf(small_query, 2)
        assert leaf.relation == 2
        assert leaf.cardinality == small_query.catalog.cardinality(2)
        assert leaf.cost == 0.0


class TestCreateTree:
    def test_cost_decomposition(self, builder, small_query, leaves):
        left, right = _joinable_pair(small_query, leaves)
        tree = builder.create_tree(left, right)
        provider = builder.provider
        expected_op = builder.cost_model.join_cost(
            provider.stats(left.vertex_set), provider.stats(right.vertex_set)
        )
        assert tree.operator_cost == expected_op
        assert tree.cost == left.cost + right.cost + expected_op

    def test_cardinality_from_provider(self, builder, small_query, leaves):
        left, right = _joinable_pair(small_query, leaves)
        tree = builder.create_tree(left, right)
        assert tree.cardinality == builder.provider.cardinality(tree.vertex_set)

    def test_counts_trees_created(self, builder, small_query, leaves):
        left, right = _joinable_pair(small_query, leaves)
        builder.create_tree(left, right)
        assert builder.stats.trees_created == 1


class TestBuildTree:
    def test_registers_cheaper_order(self, builder, small_query, leaves):
        left, right = _joinable_pair(small_query, leaves)
        memo = MemoTable()
        registered = builder.build_tree(memo, left, right)
        assert registered is not None
        both = [builder.create_tree(left, right), builder.create_tree(right, left)]
        assert registered.cost == min(t.cost for t in both)

    def test_budget_blocks_registration(self, builder, small_query, leaves):
        left, right = _joinable_pair(small_query, leaves)
        memo = MemoTable()
        assert builder.build_tree(memo, left, right, budget=0.0) is None
        assert memo.best(left.vertex_set | right.vertex_set) is None

    def test_budget_equality_admits(self, builder, small_query, leaves):
        left, right = _joinable_pair(small_query, leaves)
        exact = builder.cost_model.min_join_cost(
            builder.provider.stats(left.vertex_set),
            builder.provider.stats(right.vertex_set),
        )
        memo = MemoTable()
        assert builder.build_tree(memo, left, right, budget=exact) is not None

    def test_does_not_replace_cheaper_incumbent(self, builder, small_query, leaves):
        left, right = _joinable_pair(small_query, leaves)
        memo = MemoTable()
        first = builder.build_tree(memo, left, right)
        second = builder.build_tree(memo, left, right)
        assert second is None  # same cost, incumbent kept
        assert memo.best(first.vertex_set) is first


class TestOperatorCost:
    def test_min_over_both_orders(self, builder, small_query, leaves):
        left, right = _joinable_pair(small_query, leaves)
        provider = builder.provider
        model = builder.cost_model
        expected = min(
            model.join_cost(provider.stats(left.vertex_set), provider.stats(right.vertex_set)),
            model.join_cost(provider.stats(right.vertex_set), provider.stats(left.vertex_set)),
        )
        assert builder.operator_cost(left.vertex_set, right.vertex_set) == expected
