"""Tests for the memotable."""

import math

import pytest

from repro.plans.join_tree import JoinNode, LeafNode, plan_fingerprint
from repro.plans.memo import MemoTable


def _pair_tree(cost: float) -> JoinNode:
    return JoinNode(LeafNode(0, 10), LeafNode(1, 10), 5.0, operator_cost=cost)


def _reversed_pair_tree(cost: float) -> JoinNode:
    """Same plan class and cost as ``_pair_tree``, different fingerprint."""
    return JoinNode(LeafNode(1, 10), LeafNode(0, 10), 5.0, operator_cost=cost)


class TestRegister:
    def test_first_registration_wins(self):
        memo = MemoTable()
        tree = _pair_tree(10.0)
        assert memo.register(tree)
        assert memo.best(tree.vertex_set) is tree

    def test_cheaper_tree_replaces(self):
        memo = MemoTable()
        memo.register(_pair_tree(10.0))
        cheaper = _pair_tree(5.0)
        assert memo.register(cheaper)
        assert memo.best(cheaper.vertex_set) is cheaper

    def test_more_expensive_tree_rejected(self):
        memo = MemoTable()
        first = _pair_tree(5.0)
        memo.register(first)
        assert not memo.register(_pair_tree(10.0))
        assert memo.best(first.vertex_set) is first

    def test_equal_cost_keeps_incumbent(self):
        memo = MemoTable()
        first = _pair_tree(5.0)
        memo.register(first)
        assert not memo.register(_pair_tree(5.0))
        assert memo.best(first.vertex_set) is first


class TestTieBreakTotalOrder:
    """The deterministic (cost, canonical-fingerprint) total order.

    On an exact cost tie the lexicographically smaller fingerprint wins —
    regardless of insertion order — so armed/disarmed and sharded replays
    that visit ccps in different orders still converge on one plan.
    """

    def test_fingerprints_differ_for_mirrored_joins(self):
        assert plan_fingerprint(_pair_tree(5.0)) == "(0.1)"
        assert plan_fingerprint(_reversed_pair_tree(5.0)) == "(1.0)"

    def test_smaller_fingerprint_replaces_on_exact_tie(self):
        memo = MemoTable()
        larger = _reversed_pair_tree(5.0)  # "(1.0)"
        memo.register(larger)
        smaller = _pair_tree(5.0)  # "(0.1)" < "(1.0)"
        assert memo.register(smaller)
        assert memo.best(smaller.vertex_set) is smaller

    def test_larger_fingerprint_rejected_on_exact_tie(self):
        memo = MemoTable()
        smaller = _pair_tree(5.0)
        memo.register(smaller)
        assert not memo.register(_reversed_pair_tree(5.0))
        assert memo.best(smaller.vertex_set) is smaller

    def test_winner_is_insertion_order_independent(self):
        forward = MemoTable()
        forward.register(_pair_tree(5.0))
        forward.register(_reversed_pair_tree(5.0))
        backward = MemoTable()
        backward.register(_reversed_pair_tree(5.0))
        backward.register(_pair_tree(5.0))
        assert plan_fingerprint(forward.best(0b11)) == plan_fingerprint(
            backward.best(0b11)
        )

    def test_ranked_store_uses_the_same_order(self):
        memo = MemoTable(k=2)
        memo.register(_reversed_pair_tree(5.0))
        memo.register(_pair_tree(5.0))
        ranked = memo.best_k(0b11)
        assert [plan_fingerprint(t) for t in ranked] == ["(0.1)", "(1.0)"]


class TestTopK:
    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            MemoTable(k=0)

    def test_default_k_is_one(self):
        memo = MemoTable()
        assert memo.k == 1

    def test_k1_allocates_no_ranked_store(self):
        # The memory-parity contract: at k=1 the table is exactly the
        # pre-top-k single-best dict, with no per-class ranked lists.
        assert MemoTable()._ranked is None
        assert MemoTable(k=3)._ranked == {}

    def test_best_k_at_k1_wraps_the_scalar(self):
        memo = MemoTable()
        tree = _pair_tree(5.0)
        memo.register(tree)
        assert memo.best_k(tree.vertex_set) == [tree]
        assert memo.best_k(0b1100) == []

    def test_kth_cost_at_k1_is_best_cost(self):
        memo = MemoTable()
        memo.register(_pair_tree(5.0))
        assert memo.kth_cost(0b11) == memo.best_cost(0b11)

    def test_kth_cost_infinite_until_k_retained(self):
        memo = MemoTable(k=2)
        memo.register(_pair_tree(5.0))
        assert math.isinf(memo.kth_cost(0b11))
        memo.register(_reversed_pair_tree(7.0))
        assert memo.kth_cost(0b11) == 7.0

    def test_retains_k_cheapest_sorted(self):
        memo = MemoTable(k=2)
        a, b, c = _pair_tree(9.0), _reversed_pair_tree(3.0), _pair_tree(6.0)
        assert memo.register(a)
        assert memo.register(b)
        assert memo.register(c)  # evicts a (9.0)
        ranked = memo.best_k(0b11)
        assert [t.cost for t in ranked] == sorted(t.cost for t in ranked)
        assert len(ranked) == 2
        assert ranked[0] is b
        assert memo.best(0b11) is b

    def test_rejects_beyond_kth_cost(self):
        memo = MemoTable(k=2)
        memo.register(_pair_tree(3.0))
        memo.register(_reversed_pair_tree(5.0))
        assert not memo.register(_pair_tree(9.0))

    def test_duplicate_plan_never_occupies_two_slots(self):
        memo = MemoTable(k=3)
        memo.register(_pair_tree(5.0))
        assert not memo.register(_pair_tree(5.0))
        assert len(memo.best_k(0b11)) == 1

    def test_best_agrees_with_rank_one(self):
        memo = MemoTable(k=3)
        memo.register(_pair_tree(9.0))
        memo.register(_reversed_pair_tree(4.0))
        assert memo.best(0b11) is memo.best_k(0b11)[0]
        assert memo.best_cost(0b11) == 4.0


class TestLookups:
    def test_best_of_unknown_is_none(self):
        assert MemoTable().best(0b11) is None

    def test_best_cost_of_unknown_is_infinite(self):
        assert math.isinf(MemoTable().best_cost(0b11))

    def test_best_cost_of_known(self):
        memo = MemoTable()
        memo.register(_pair_tree(7.0))
        assert memo.best_cost(0b11) == 7.0

    def test_contains_and_len(self):
        memo = MemoTable()
        assert 0b11 not in memo
        memo.register(_pair_tree(1.0))
        assert 0b11 in memo
        assert len(memo) == 1


class TestPlanClassCounting:
    def test_singletons_excluded(self):
        memo = MemoTable()
        memo.register(LeafNode(0, 1.0))
        memo.register(LeafNode(1, 1.0))
        memo.register(_pair_tree(1.0))
        assert len(memo) == 3
        assert memo.n_plan_classes() == 1

    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_count_is_invariant_in_k(self, k):
        # Table III's *s* counter counts plan *classes*, not retained
        # plans: widening the memo must never inflate it.
        memo = MemoTable(k=k)
        memo.register(LeafNode(0, 1.0))
        memo.register(LeafNode(1, 1.0))
        memo.register(_pair_tree(1.0))
        memo.register(_reversed_pair_tree(2.0))  # second plan, same class
        assert memo.n_plan_classes() == 1
        assert len(memo) == 3

    def test_entries_iterates_everything(self):
        memo = MemoTable()
        memo.register(LeafNode(0, 1.0))
        memo.register(_pair_tree(1.0))
        assert len(dict(memo.entries())) == 2
