"""Tests for the memotable."""

import math

from repro.plans.join_tree import JoinNode, LeafNode
from repro.plans.memo import MemoTable


def _pair_tree(cost: float) -> JoinNode:
    return JoinNode(LeafNode(0, 10), LeafNode(1, 10), 5.0, operator_cost=cost)


class TestRegister:
    def test_first_registration_wins(self):
        memo = MemoTable()
        tree = _pair_tree(10.0)
        assert memo.register(tree)
        assert memo.best(tree.vertex_set) is tree

    def test_cheaper_tree_replaces(self):
        memo = MemoTable()
        memo.register(_pair_tree(10.0))
        cheaper = _pair_tree(5.0)
        assert memo.register(cheaper)
        assert memo.best(cheaper.vertex_set) is cheaper

    def test_more_expensive_tree_rejected(self):
        memo = MemoTable()
        first = _pair_tree(5.0)
        memo.register(first)
        assert not memo.register(_pair_tree(10.0))
        assert memo.best(first.vertex_set) is first

    def test_equal_cost_keeps_incumbent(self):
        memo = MemoTable()
        first = _pair_tree(5.0)
        memo.register(first)
        assert not memo.register(_pair_tree(5.0))
        assert memo.best(first.vertex_set) is first


class TestLookups:
    def test_best_of_unknown_is_none(self):
        assert MemoTable().best(0b11) is None

    def test_best_cost_of_unknown_is_infinite(self):
        assert math.isinf(MemoTable().best_cost(0b11))

    def test_best_cost_of_known(self):
        memo = MemoTable()
        memo.register(_pair_tree(7.0))
        assert memo.best_cost(0b11) == 7.0

    def test_contains_and_len(self):
        memo = MemoTable()
        assert 0b11 not in memo
        memo.register(_pair_tree(1.0))
        assert 0b11 in memo
        assert len(memo) == 1


class TestPlanClassCounting:
    def test_singletons_excluded(self):
        memo = MemoTable()
        memo.register(LeafNode(0, 1.0))
        memo.register(LeafNode(1, 1.0))
        memo.register(_pair_tree(1.0))
        assert len(memo) == 3
        assert memo.n_plan_classes() == 1

    def test_entries_iterates_everything(self):
        memo = MemoTable()
        memo.register(LeafNode(0, 1.0))
        memo.register(_pair_tree(1.0))
        assert len(dict(memo.entries())) == 2
