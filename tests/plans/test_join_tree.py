"""Tests for join-tree nodes."""

import pytest

from repro.plans.join_tree import JoinNode, LeafNode


@pytest.fixture
def tree():
    # ((R0 x R1) x R2)
    bottom = JoinNode(LeafNode(0, 100), LeafNode(1, 200), 50.0, operator_cost=10.0)
    return JoinNode(bottom, LeafNode(2, 300), 25.0, operator_cost=5.0)


class TestLeafNode:
    def test_vertex_set_and_cost(self):
        leaf = LeafNode(3, 42.0)
        assert leaf.vertex_set == 0b1000
        assert leaf.cost == 0.0
        assert leaf.cardinality == 42.0

    def test_default_name(self):
        assert LeafNode(2, 1.0).name == "R2"

    def test_custom_name(self):
        assert LeafNode(2, 1.0, name="orders").name == "orders"

    def test_counts(self):
        leaf = LeafNode(0, 1.0)
        assert leaf.n_joins() == 0
        assert leaf.depth() == 0
        assert list(leaf.leaves()) == [leaf]


class TestJoinNode:
    def test_vertex_set_union(self, tree):
        assert tree.vertex_set == 0b111

    def test_cost_accumulates(self, tree):
        assert tree.cost == 15.0
        assert tree.operator_cost == 5.0

    def test_overlapping_inputs_rejected(self):
        with pytest.raises(ValueError):
            JoinNode(LeafNode(0, 1.0), LeafNode(0, 1.0), 1.0, 1.0)

    def test_structure_counters(self, tree):
        assert tree.n_joins() == 2
        assert tree.depth() == 2

    def test_leaves_left_to_right(self, tree):
        assert tree.relation_indices() == [0, 1, 2]


class TestRendering:
    def test_sexpr(self, tree):
        assert tree.sexpr() == "((R0 x R1) x R2)"

    def test_explain_contains_all_relations(self, tree):
        text = tree.explain()
        for name in ("R0", "R1", "R2"):
            assert name in text
        assert "Join" in text
        assert "Scan" in text

    def test_repr(self, tree):
        assert "cost=" in repr(tree)


class TestRelabel:
    def test_relabel_renames_leaves(self, tree):
        relabeled = tree.relabel([2, 1, 0])
        assert relabeled.relation_indices() == [2, 1, 0]
        assert relabeled.vertex_set == 0b111

    def test_relabel_preserves_costs(self, tree):
        relabeled = tree.relabel([2, 1, 0])
        assert relabeled.cost == tree.cost
        assert relabeled.cardinality == tree.cardinality
