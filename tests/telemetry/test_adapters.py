"""Silo adapters: each legacy counter surface reaches the registry."""

from types import SimpleNamespace

from repro.bench.harness import FailureCounts
from repro.bench.profiling import EnumerationProfile
from repro.stats.counters import OptimizationStats
from repro.telemetry import MetricRegistry
from repro.telemetry.adapters import (
    publish_cluster_health,
    publish_enumeration_profile,
    publish_failure_counts,
    publish_optimization_stats,
    publish_service_health,
)


def _fake_health(**overrides):
    """A ServiceHealth stand-in (the adapter is duck-typed on purpose)."""
    health = SimpleNamespace(
        status="ok",
        healthy=True,
        workers_alive=2,
        workers_total=2,
        queue={"depth": 1, "capacity": 8, "high_water": 3},
        accepted=10,
        rejected=1,
        completed=9,
        failed=0,
        timeouts=0,
        cancelled=0,
        retries=2,
        breaker_trips=1,
        unhandled_worker_errors=0,
        rung_histogram={"exact": 8, "heuristic:goo": 1},
        breakers={"cost_model": {"state": "open"}, "catalog": {"state": "closed"}},
        plan_cache={"hits": 4, "misses": 5},
    )
    for key, value in overrides.items():
        setattr(health, key, value)
    return health


class TestOptimizationStatsAdapter:
    def test_every_field_becomes_a_total_counter(self):
        registry = MetricRegistry()
        stats = OptimizationStats(ccps_enumerated=5, memo_hits=2)
        publish_optimization_stats(registry, stats)
        snapshot = registry.snapshot()
        assert snapshot["repro_optimizer_ccps_enumerated_total"] == 5
        assert snapshot["repro_optimizer_memo_hits_total"] == 2
        for field_name in stats.as_dict():
            assert f"repro_optimizer_{field_name}_total" in snapshot

    def test_per_run_publishes_accumulate(self):
        registry = MetricRegistry()
        publish_optimization_stats(
            registry, OptimizationStats(trees_created=3)
        )
        publish_optimization_stats(
            registry, OptimizationStats(trees_created=4)
        )
        assert registry.snapshot()["repro_optimizer_trees_created_total"] == 7


class TestServiceHealthAdapter:
    def test_snapshot_publishes_gauges(self):
        registry = MetricRegistry()
        publish_service_health(registry, _fake_health())
        snapshot = registry.snapshot()
        assert snapshot["repro_service_up"] == 1
        assert snapshot["repro_service_requests_accepted"] == 10
        assert snapshot["repro_service_queue_depth"] == 1
        assert snapshot['repro_service_rung_requests{rung="exact"}'] == 8
        assert snapshot['repro_service_breaker_open{component="cost_model"}'] == 1
        assert snapshot['repro_service_breaker_open{component="catalog"}'] == 0
        assert snapshot["repro_service_plan_cache_hits"] == 4

    def test_republishing_is_idempotent(self):
        registry = MetricRegistry()
        publish_service_health(registry, _fake_health())
        publish_service_health(registry, _fake_health())
        assert registry.snapshot()["repro_service_requests_accepted"] == 10

    def test_degraded_health_stays_up_but_flags_degraded(self):
        # Degraded means "serving with open breakers": still up, not
        # healthy, and the dedicated degraded gauge raises the flag.
        registry = MetricRegistry()
        publish_service_health(
            registry, _fake_health(status="degraded", healthy=False)
        )
        snapshot = registry.snapshot()
        assert snapshot["repro_service_up"] == 1
        assert snapshot["repro_service_degraded"] == 1
        assert snapshot["repro_service_healthy"] == 0

    def test_stopped_health_flips_up_gauge(self):
        registry = MetricRegistry()
        publish_service_health(
            registry, _fake_health(status="stopped", healthy=False)
        )
        snapshot = registry.snapshot()
        assert snapshot["repro_service_up"] == 0
        assert snapshot["repro_service_degraded"] == 0


def _fake_cluster_health(**overrides):
    """A ClusterHealth stand-in (duck-typed like the other silos)."""
    shard_up = SimpleNamespace(
        shard_id=0,
        state="up",
        outstanding=2,
        respawns=1,
        heartbeat_age_seconds=0.04,
    )
    shard_down = SimpleNamespace(
        shard_id=1,
        state="backoff",
        outstanding=0,
        respawns=3,
        heartbeat_age_seconds=None,
    )
    health = SimpleNamespace(
        status="degraded",
        healthy=False,
        shards_total=2,
        shards_up=1,
        accepted=40,
        rejected=2,
        completed=38,
        failed=0,
        failovers=5,
        respawns=4,
        drains=1,
        fallback_served=3,
        wire_errors=1,
        shards=[shard_up, shard_down],
    )
    for key, value in overrides.items():
        setattr(health, key, value)
    return health


class TestClusterHealthAdapter:
    def test_snapshot_publishes_cluster_and_per_shard_gauges(self):
        registry = MetricRegistry()
        publish_cluster_health(registry, _fake_cluster_health())
        snapshot = registry.snapshot()
        assert snapshot["repro_shard_cluster_up"] == 1.0
        assert snapshot["repro_shard_cluster_healthy"] == 0.0
        assert snapshot["repro_shard_cluster_shards_up"] == 1
        assert snapshot["repro_shard_cluster_shards_total"] == 2
        assert snapshot["repro_shard_cluster_requests_accepted"] == 40
        assert snapshot["repro_shard_cluster_failovers"] == 5
        assert snapshot["repro_shard_cluster_respawns"] == 4
        assert snapshot["repro_shard_cluster_fallback_served"] == 3
        assert snapshot["repro_shard_cluster_wire_errors"] == 1
        assert snapshot['repro_shard_up{shard="0"}'] == 1.0
        assert snapshot['repro_shard_up{shard="1"}'] == 0.0
        assert snapshot['repro_shard_state_outstanding{shard="0"}'] == 2
        assert snapshot['repro_shard_state_respawns{shard="1"}'] == 3
        # No heartbeat yet -> no age series for that shard.
        assert 'repro_shard_heartbeat_age_seconds{shard="1"}' not in snapshot

    def test_no_shard_up_flips_cluster_up(self):
        registry = MetricRegistry()
        publish_cluster_health(
            registry,
            _fake_cluster_health(status="down", shards_up=0, shards=[]),
        )
        assert registry.snapshot()["repro_shard_cluster_up"] == 0.0

    def test_republishing_is_idempotent(self):
        registry = MetricRegistry()
        publish_cluster_health(registry, _fake_cluster_health())
        publish_cluster_health(registry, _fake_cluster_health())
        assert registry.snapshot()["repro_shard_cluster_failovers"] == 5


class TestFailureCountsAdapter:
    def test_classes_publish_as_gauges(self):
        registry = MetricRegistry()
        counts = FailureCounts(timeouts=1, degraded=3, retries=2)
        publish_failure_counts(registry, counts)
        snapshot = registry.snapshot()
        assert snapshot["repro_failures_timeouts"] == 1
        assert snapshot["repro_failures_degraded"] == 3
        assert snapshot["repro_failures_retries"] == 2


class TestEnumerationProfileAdapter:
    def test_profile_totals_publish(self):
        registry = MetricRegistry()
        profile = EnumerationProfile(
            passes={0b011: 2, 0b110: 1}, ccps={0b011: 6, 0b110: 2}
        )
        publish_enumeration_profile(registry, profile)
        snapshot = registry.snapshot()
        assert snapshot["repro_enumeration_passes_total"] == 3
        assert snapshot["repro_enumeration_classes_total"] == 2
        assert snapshot["repro_enumeration_ccps_total"] == 8
        assert snapshot["repro_enumeration_reenumerated_classes_total"] == 1
