"""Metric primitives: counters, gauges, histograms, registry discipline."""

import math
import threading

import pytest

from repro.errors import TelemetryError
from repro.telemetry import (
    DEFAULT_LATENCY_BUCKETS,
    MetricRegistry,
)
from repro.telemetry.metrics import render_labels


@pytest.fixture
def registry():
    return MetricRegistry()


class TestCounter:
    def test_accumulates(self, registry):
        counter = registry.counter("repro_widgets_total", "widgets")
        counter.inc()
        counter.inc(3)
        assert counter.value == 4

    def test_negative_increment_rejected(self, registry):
        counter = registry.counter("repro_widgets_total")
        with pytest.raises(TelemetryError):
            counter.inc(-1)

    def test_disabled_registry_freezes_values(self, registry):
        counter = registry.counter("repro_widgets_total")
        counter.inc()
        registry.disable()
        counter.inc(100)
        assert counter.value == 1
        registry.enable()
        counter.inc()
        assert counter.value == 2

    def test_concurrent_increments_do_not_lose_updates(self, registry):
        counter = registry.counter("repro_widgets_total")

        def bump():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8000


class TestGauge:
    def test_set_inc_dec(self, registry):
        gauge = registry.gauge("repro_queue_depth")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec()
        assert gauge.value == 6

    def test_disabled_set_is_a_noop(self, registry):
        gauge = registry.gauge("repro_queue_depth")
        registry.disable()
        gauge.set(9)
        assert gauge.value == 0


class TestHistogram:
    def test_observe_fills_cumulative_buckets(self, registry):
        histogram = registry.histogram(
            "repro_wait_seconds", buckets=(0.1, 1.0)
        )
        for value in (0.05, 0.5, 0.5, 5.0):
            histogram.observe(value)
        counts = histogram.bucket_counts()
        assert counts["0.1"] == 1
        assert counts["1"] == 3
        assert counts["+Inf"] == 4
        assert histogram.count == 4
        assert histogram.total == pytest.approx(6.05)

    def test_boundary_value_lands_in_its_bucket(self, registry):
        # Prometheus buckets are upper-inclusive: observe(le) counts in le.
        histogram = registry.histogram(
            "repro_wait_seconds", buckets=(0.1, 1.0)
        )
        histogram.observe(0.1)
        assert histogram.bucket_counts()["0.1"] == 1

    def test_percentile_interpolates_and_clamps(self, registry):
        histogram = registry.histogram(
            "repro_wait_seconds", buckets=(0.1, 1.0)
        )
        assert math.isnan(histogram.percentile(50.0))
        for _ in range(10):
            histogram.observe(0.05)
        assert 0.0 < histogram.percentile(50.0) <= 0.1
        histogram.observe(99.0)  # overflow bucket
        assert histogram.percentile(100.0) == 1.0  # clamped to last bound

    def test_bucket_validation(self, registry):
        with pytest.raises(TelemetryError):
            registry.histogram("repro_a_seconds", buckets=())
        with pytest.raises(TelemetryError):
            registry.histogram("repro_b_seconds", buckets=(1.0, 1.0))
        with pytest.raises(TelemetryError):
            registry.histogram("repro_c_seconds", buckets=(float("inf"),))

    def test_default_buckets_cover_latency_range(self, registry):
        histogram = registry.histogram("repro_wait_seconds")
        assert histogram.buckets == DEFAULT_LATENCY_BUCKETS


class TestRegistry:
    def test_get_or_create_returns_the_same_instrument(self, registry):
        assert registry.counter("repro_x_total") is registry.counter(
            "repro_x_total"
        )
        assert registry.counter(
            "repro_x_total", labels={"k": "a"}
        ) is not registry.counter("repro_x_total", labels={"k": "b"})

    def test_kind_collision_rejected(self, registry):
        registry.counter("repro_x_total")
        with pytest.raises(TelemetryError):
            registry.gauge("repro_x_total")

    def test_kind_collision_across_label_sets_rejected(self, registry):
        registry.counter("repro_x_total", labels={"k": "a"})
        with pytest.raises(TelemetryError):
            registry.gauge("repro_x_total", labels={"k": "b"})

    def test_histogram_bucket_mismatch_rejected(self, registry):
        registry.histogram("repro_x_seconds", buckets=(1.0,))
        with pytest.raises(TelemetryError):
            registry.histogram("repro_x_seconds", buckets=(2.0,))

    def test_invalid_names_rejected(self, registry):
        with pytest.raises(TelemetryError):
            registry.counter("bad name")
        with pytest.raises(TelemetryError):
            registry.counter("repro_x_total", labels={"bad-label": 1})

    def test_snapshot_maps_full_names_to_values(self, registry):
        registry.counter("repro_x_total").inc(2)
        registry.gauge("repro_y", labels={"rung": "exact"}).set(7)
        snapshot = registry.snapshot()
        assert snapshot["repro_x_total"] == 2
        assert snapshot['repro_y{rung="exact"}'] == 7


class TestExposition:
    def test_text_format(self, registry):
        registry.counter("repro_x_total", "Things counted.").inc(3)
        registry.gauge("repro_y", "A level.").set(1.5)
        text = registry.expose_text()
        assert "# HELP repro_x_total Things counted." in text
        assert "# TYPE repro_x_total counter" in text
        assert "repro_x_total 3" in text
        assert "repro_y 1.5" in text
        assert text.endswith("\n")

    def test_histogram_exposition_shape(self, registry):
        histogram = registry.histogram(
            "repro_wait_seconds", "Waits.", buckets=(0.5,)
        )
        histogram.observe(0.1)
        text = registry.expose_text()
        assert 'repro_wait_seconds_bucket{le="0.5"} 1' in text
        assert 'repro_wait_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_wait_seconds_sum 0.1" in text
        assert "repro_wait_seconds_count 1" in text

    def test_help_and_type_emitted_once_per_name(self, registry):
        registry.counter("repro_x_total", "Help.", labels={"k": "a"}).inc()
        registry.counter("repro_x_total", "Help.", labels={"k": "b"}).inc()
        text = registry.expose_text()
        assert text.count("# TYPE repro_x_total counter") == 1

    def test_label_rendering_sorted_and_escaped(self):
        rendered = render_labels({"b": 'say "hi"', "a": 1})
        assert rendered == '{a="1",b="say \\"hi\\""}'

    def test_empty_registry_exposes_empty_string(self, registry):
        assert registry.expose_text() == ""
