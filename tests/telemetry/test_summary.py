"""Percentiles and per-phase span summaries."""

import math

import pytest

from repro.telemetry import Tracer
from repro.telemetry.summary import (
    DEFAULT_GROUP_ATTRS,
    percentile,
    summarize_samples,
    summarize_spans,
)


class CountingClock:
    def __init__(self):
        self.ticks = -1.0

    def __call__(self):
        self.ticks += 1.0
        return self.ticks


class TestPercentile:
    def test_empty_is_nan(self):
        assert math.isnan(percentile([], 50.0))

    def test_interpolation(self):
        values = [10.0, 20.0, 30.0, 40.0]
        assert percentile(values, 50.0) == pytest.approx(25.0)
        assert percentile(values, 0.0) == 10.0
        assert percentile(values, 100.0) == 40.0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], -1.0)


class TestSummarizeSamples:
    def test_shape_and_values(self):
        summary = summarize_samples([1.0, 2.0, 3.0])
        assert summary["count"] == 3
        assert summary["p50"] == 2.0
        assert summary["max"] == 3.0

    def test_empty_is_all_nan(self):
        summary = summarize_samples([])
        assert summary["count"] == 0
        assert math.isnan(summary["p50"])
        assert math.isnan(summary["max"])


class TestSummarizeSpans:
    def test_groups_by_configured_attribute(self):
        tracer = Tracer(clock=CountingClock())
        with tracer.span("ladder_rung", rung="exact"):
            pass
        with tracer.span("ladder_rung", rung="exact"):
            pass
        with tracer.span("ladder_rung", rung="heuristic:goo"):
            pass
        with tracer.span("enumerate", enumerator="mincut_conservative"):
            pass
        summary = summarize_spans(tracer.finished_spans())
        assert summary["ladder_rung"]["exact"]["count"] == 2
        assert summary["ladder_rung"]["heuristic:goo"]["count"] == 1
        assert summary["enumerate"]["mincut_conservative"]["count"] == 1

    def test_unmapped_names_group_under_star(self):
        tracer = Tracer(clock=CountingClock())
        with tracer.span("custom"):
            pass
        summary = summarize_spans(tracer.finished_spans())
        assert summary["custom"]["*"]["count"] == 1

    def test_open_spans_are_skipped(self):
        tracer = Tracer(clock=CountingClock())
        span = tracer.span("ladder_rung", rung="exact")
        span.__enter__()  # never closed — no duration yet
        assert summarize_spans([span]) == {}

    def test_default_group_attrs_cover_the_taxonomy(self):
        assert DEFAULT_GROUP_ATTRS["ladder_rung"] == "rung"
        assert DEFAULT_GROUP_ATTRS["enumerate"] == "enumerator"
        assert DEFAULT_GROUP_ATTRS["attempt"] == "outcome"
