"""Spans and tracer: nesting, clocks, sinks, the null span, the bundle."""

import json
import threading

from repro.telemetry import NULL_SPAN, MetricRegistry, Telemetry, Tracer, TraceSink


class CountingClock:
    """Deterministic clock: each call returns 0.0, 1.0, 2.0, ..."""

    def __init__(self):
        self.ticks = -1.0

    def __call__(self):
        self.ticks += 1.0
        return self.ticks


class TestSpanTrees:
    def test_nesting_builds_a_tree(self):
        tracer = Tracer(clock=CountingClock())
        with tracer.span("request") as root:
            with tracer.span("attempt") as attempt:
                with tracer.span("enumerate"):
                    pass
        assert root.children == [attempt]
        assert attempt.children[0].name == "enumerate"
        assert tracer.roots == [root]

    def test_durations_come_from_the_injected_clock(self):
        tracer = Tracer(clock=CountingClock())
        with tracer.span("outer"):
            with tracer.span("inner") as inner:
                pass
        root = tracer.roots[0]
        assert inner.duration == 1.0  # ticks 1 -> 2
        assert root.duration == 3.0  # ticks 0 -> 3

    def test_exception_marks_error_status(self):
        tracer = Tracer(clock=CountingClock())
        try:
            with tracer.span("request"):
                raise ValueError("boom")
        except ValueError:
            pass
        root = tracer.roots[0]
        assert root.status == "error"
        assert root.attrs["error"] == "ValueError"

    def test_events_record_relative_time_and_attrs(self):
        tracer = Tracer(clock=CountingClock())
        with tracer.span("request") as span:
            span.event("breaker_trip", component="cost_model")
        event = span.events[0]
        assert event["name"] == "breaker_trip"
        assert event["component"] == "cost_model"
        assert event["at"] == 1.0

    def test_event_cap_per_span(self):
        tracer = Tracer(clock=CountingClock(), max_events_per_span=2)
        with tracer.span("request") as span:
            for index in range(5):
                span.event(f"e{index}")
        assert len(span.events) == 2

    def test_abandoned_child_span_does_not_corrupt_the_stack(self):
        # A generator can abandon an entered span without exiting it; the
        # later pop of an enclosing span must still unwind correctly.
        tracer = Tracer(clock=CountingClock())
        outer = tracer.span("outer")
        outer.__enter__()
        abandoned = tracer.span("abandoned")
        abandoned.__enter__()  # never exited
        outer.__exit__(None, None, None)
        assert tracer.roots == [outer]
        assert tracer.current() is None

    def test_threads_trace_independently(self):
        tracer = Tracer()
        seen = []

        def work(name):
            with tracer.span(name):
                seen.append(tracer.current().name)

        threads = [
            threading.Thread(target=work, args=(f"t{i}",)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sorted(seen) == ["t0", "t1", "t2", "t3"]
        assert len(tracer.roots) == 4
        assert all(not root.children for root in tracer.roots)

    def test_max_roots_bounds_retention(self):
        tracer = Tracer(max_roots=2)
        for _ in range(5):
            with tracer.span("request"):
                pass
        assert len(tracer.roots) == 2
        assert tracer.dropped_roots == 3

    def test_reset_drops_roots(self):
        tracer = Tracer()
        with tracer.span("request"):
            pass
        tracer.reset()
        assert tracer.roots == []
        assert tracer.finished_spans() == []


class TestTraceSink:
    def test_roots_append_as_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = TraceSink(str(path))
        tracer = Tracer(clock=CountingClock(), sink=sink)
        with tracer.span("request", request_id=1):
            with tracer.span("enumerate"):
                pass
        with tracer.span("request", request_id=2):
            pass
        sink.close()
        assert sink.written == 2
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [line["attrs"]["request_id"] for line in lines] == [1, 2]
        assert lines[0]["children"][0]["name"] == "enumerate"

    def test_sink_opens_lazily(self, tmp_path):
        path = tmp_path / "never.jsonl"
        sink = TraceSink(str(path))
        sink.close()
        assert not path.exists()


class TestNullSpan:
    def test_null_span_is_inert_and_shared(self):
        with NULL_SPAN as span:
            assert span is NULL_SPAN
            span.set(ignored=True)
            span.event("ignored")
        assert NULL_SPAN.attrs == {}
        assert NULL_SPAN.events == []
        assert list(NULL_SPAN.walk()) == []


class TestTelemetryBundle:
    def test_span_without_tracer_is_null(self):
        telemetry = Telemetry(registry=MetricRegistry())
        assert telemetry.span("anything") is NULL_SPAN
        telemetry.event("ignored")  # no tracer: silently dropped

    def test_span_with_tracer_is_real_and_attrs_stick(self):
        telemetry = Telemetry(tracer=Tracer(clock=CountingClock()))
        with telemetry.span("request", rung="exact") as span:
            telemetry.event("plan_cache_hit", key="k")
        assert span.attrs["rung"] == "exact"
        assert span.events[0]["name"] == "plan_cache_hit"

    def test_default_registry_is_created(self):
        telemetry = Telemetry()
        assert isinstance(telemetry.registry, MetricRegistry)
        assert telemetry.detailed_spans is False
