"""The exposition dump CLI: every silo present, trace tree written."""

import json

from repro.telemetry.dump import main, run_dump


class TestRunDump:
    def test_all_four_silos_reach_the_registry(self):
        telemetry = run_dump(queries=3, seed=7, workers=1)
        names = {metric.name for metric in telemetry.registry.metrics()}
        assert any(name.startswith("repro_optimizer_") for name in names)
        assert any(name.startswith("repro_service_") for name in names)
        assert any(name.startswith("repro_failures_") for name in names)
        assert any(name.startswith("repro_enumeration_") for name in names)

    def test_trace_file_holds_request_trees(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        run_dump(queries=2, seed=7, workers=1, trace_path=str(path))
        roots = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        request_roots = [r for r in roots if r["name"] == "request"]
        assert len(request_roots) == 2
        names = set()
        for root in request_roots:
            stack = [root]
            while stack:
                node = stack.pop()
                names.add(node["name"])
                stack.extend(node.get("children", []))
        assert {"request", "attempt", "ladder_rung", "enumerate"} <= names


class TestMain:
    def test_text_exposition_prints_nonempty(self, capsys):
        assert main(["--queries", "2", "--workers", "1"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_service_responses_total counter" in out
        assert "repro_optimizer_ccps_enumerated_total" in out

    def test_json_snapshot_prints_valid_json(self, capsys):
        assert main(["--queries", "2", "--workers", "1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert any(key.startswith("repro_service_") for key in payload)
