"""Tests for plan execution: operator equivalence and plan independence."""

import pytest
from hypothesis import given, settings

from repro.core.optimizer import optimize
from repro.exec.data import synthesize
from repro.exec.executor import (
    execute_plan,
    result_signature,
    validate_estimates,
)
from repro.exec.operators import hash_join, nested_loop_join, scan
from repro.workload.generator import generate_query
from tests.conftest import small_queries


@pytest.fixture(scope="module")
def executed_query():
    query = generate_query("cyclic", 6, seed=42)
    database = synthesize(query, row_budget=1200, seed=2)
    plan = optimize(database.scaled_query, pruning="apcbi").plan
    return query, database, plan


class TestOperators:
    def test_scan_yields_all_rows(self, executed_query):
        _, database, _ = executed_query
        rows = list(scan(database, 0))
        assert len(rows) == database.table(0).n_rows
        assert all(set(row) == {0} for row in rows)

    def test_hash_join_equals_nested_loops(self, executed_query):
        _, database, _ = executed_query
        u, v = sorted(database.query.graph.edges)[0]
        left = list(scan(database, u))
        right = list(scan(database, v))
        hashed = list(hash_join(database, left, right, 1 << u, 1 << v))
        looped = list(
            nested_loop_join(database, left, right, 1 << u, 1 << v)
        )
        assert result_signature(hashed) == result_signature(looped)

    def test_cross_product_refused(self, executed_query):
        _, database, _ = executed_query
        graph = database.query.graph
        pairs = [
            (u, v)
            for u in range(graph.n_vertices)
            for v in range(graph.n_vertices)
            if u < v and not graph.has_edge(u, v)
        ]
        if not pairs:
            pytest.skip("this random graph happens to be a clique")
        u, v = pairs[0]
        with pytest.raises(ValueError, match="cross product"):
            list(
                hash_join(
                    database,
                    scan(database, u),
                    scan(database, v),
                    1 << u,
                    1 << v,
                )
            )


class TestPlanIndependence:
    @given(query=small_queries(max_n=5))
    @settings(max_examples=10)
    def test_all_algorithms_compute_the_same_result(self, query):
        """The strongest end-to-end check: different join trees for the
        same query must produce identical row multisets."""
        database = synthesize(query, row_budget=400, seed=3)
        signatures = set()
        for enumerator, pruning in (
            ("mincut_conservative", "apcbi"),
            ("mincut_lazy", "none"),
            ("mincut_branch", "apcb"),
        ):
            plan = optimize(
                database.scaled_query, enumerator=enumerator, pruning=pruning
            ).plan
            execution = execute_plan(plan, database)
            signatures.add(result_signature(execution.rows))
        assert len(signatures) == 1

    def test_hash_and_nested_loop_execution_agree(self, executed_query):
        _, database, plan = executed_query
        hashed = execute_plan(plan, database)
        looped = execute_plan(plan, database, use_nested_loops=True)
        assert result_signature(hashed.rows) == result_signature(looped.rows)
        assert hashed.actual_cardinalities == looped.actual_cardinalities


class TestPoisonedPlansRefused:
    """Satellite of the resilience layer: exec validates before running."""

    @pytest.mark.parametrize("poison", [float("nan"), float("inf"), -1.0])
    def test_bad_cost_refused_before_execution(self, executed_query, poison):
        from repro.plans.join_tree import JoinNode, LeafNode
        from repro.plans.validation import PlanValidationError

        query, database, _ = executed_query
        u, v = sorted(database.query.graph.edges)[0]
        bad = JoinNode(
            LeafNode(u, query.catalog.cardinality(u)),
            LeafNode(v, query.catalog.cardinality(v)),
            10.0,
            poison,
        )
        with pytest.raises(PlanValidationError):
            execute_plan(bad, database)

    def test_nan_cardinality_refused(self, executed_query):
        from repro.plans.join_tree import JoinNode, LeafNode
        from repro.plans.validation import PlanValidationError

        query, database, _ = executed_query
        u, v = sorted(database.query.graph.edges)[0]
        bad = JoinNode(
            LeafNode(u, query.catalog.cardinality(u)),
            LeafNode(v, query.catalog.cardinality(v)),
            float("nan"),
            1.0,
        )
        with pytest.raises(PlanValidationError, match="cardinality"):
            execute_plan(bad, database)


class TestEstimateValidation:
    def test_full_report_covers_every_plan_class(self, executed_query):
        _, database, plan = executed_query
        report = validate_estimates(plan, database)
        assert plan.vertex_set in report
        assert len(report) == 2 * database.query.n_relations - 1

    def test_fk_chain_estimates_are_exact(self):
        """Pure fk chains reproduce the estimate exactly by construction."""
        query = generate_query("chain", 5, seed=31, join_scheme="fk")
        # Only validate when all edges actually got the fk treatment.
        fk_edges = sum(
            1
            for u, v in query.graph.edges
            if any(
                abs(
                    query.catalog.selectivity(u, v)
                    - 1.0 / query.catalog.cardinality(side)
                )
                < 1e-12
                for side in (u, v)
            )
        )
        if fk_edges != len(query.graph.edges):
            pytest.skip("workload randomness produced a non-fk edge")
        database = synthesize(query, row_budget=3000, seed=5)
        plan = optimize(database.scaled_query).plan
        report = validate_estimates(plan, database)
        for vertex_set, (estimated, actual) in report.items():
            if vertex_set & (vertex_set - 1):
                assert actual == pytest.approx(estimated, rel=0.35)

    def test_result_signature_distinguishes_multisets(self):
        row = {0: (1,)}
        assert result_signature([row]) != result_signature([row, dict(row)])
