"""Tests for synthetic data generation."""

import pytest
from hypothesis import given

from repro.exec.data import synthesize
from repro.graph import bitset
from repro.workload.generator import generate_query
from tests.conftest import small_queries


class TestScaling:
    def test_row_budget_respected(self):
        query = generate_query("cyclic", 8, seed=5)
        database = synthesize(query, row_budget=1000)
        assert sum(t.n_rows for t in database.tables) <= 1100  # rounding slack

    def test_small_queries_materialize_fully(self):
        query = generate_query("chain", 3, seed=1)
        total = sum(
            query.catalog.cardinality(i) for i in range(query.n_relations)
        )
        if total <= 100_000:
            database = synthesize(query, row_budget=200_000)
            for index, table in enumerate(database.tables):
                assert table.n_rows == round(query.catalog.cardinality(index))

    def test_every_relation_has_at_least_one_row(self):
        query = generate_query("clique", 6, seed=9)
        database = synthesize(query, row_budget=50)
        assert all(t.n_rows >= 1 for t in database.tables)


class TestColumns:
    def test_one_column_per_incident_edge(self, small_query):
        database = synthesize(small_query, row_budget=500)
        for relation in range(small_query.n_relations):
            table = database.table(relation)
            degree = bitset.bit_count(small_query.graph.adjacency(relation))
            assert len(table.columns) == degree
            for row in table.rows:
                assert len(row) == degree

    def test_column_lookup_is_orientation_free(self, small_query):
        database = synthesize(small_query, row_budget=500)
        u, v = sorted(small_query.graph.edges)[0]
        assert database.table(u).column_of((u, v)) == database.table(u).column_of(
            (v, u)
        )


class TestForeignKeys:
    def test_fk_columns_reference_existing_keys(self):
        query = generate_query("chain", 5, seed=3, join_scheme="fk")
        database = synthesize(query, row_budget=2000, seed=7)
        for u, v in sorted(query.graph.edges):
            selectivity = query.catalog.selectivity(u, v)
            key_side = None
            for side in (u, v):
                if abs(selectivity - 1.0 / query.catalog.cardinality(side)) < 1e-12:
                    key_side = side
                    break
            if key_side is None:
                continue
            fk_side = v if key_side == u else u
            keys = {
                row[database.table(key_side).column_of((u, v))]
                for row in database.table(key_side).rows
            }
            for row in database.table(fk_side).rows:
                assert row[database.table(fk_side).column_of((u, v))] in keys


class TestScaledQuery:
    def test_scaled_catalog_matches_tables(self, small_query):
        database = synthesize(small_query, row_budget=800)
        for relation in range(small_query.n_relations):
            assert database.scaled_query.catalog.cardinality(relation) == float(
                database.table(relation).n_rows
            )

    def test_scaled_query_same_graph(self, small_query):
        database = synthesize(small_query, row_budget=800)
        assert database.scaled_query.graph == small_query.graph

    @given(query=small_queries(max_n=6))
    def test_determinism_under_seed(self, query):
        a = synthesize(query, row_budget=300, seed=11)
        b = synthesize(query, row_budget=300, seed=11)
        assert [t.rows for t in a.tables] == [t.rows for t in b.tables]
