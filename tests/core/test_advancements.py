"""Tests for the advancement toggle set."""

import pytest

from repro.core.advancements import ADVANCEMENT_NAMES, AdvancementConfig


class TestCannedConfigs:
    def test_default_is_all_on(self):
        assert AdvancementConfig().enabled() == ADVANCEMENT_NAMES
        assert AdvancementConfig.all_on().enabled() == ADVANCEMENT_NAMES

    def test_all_off(self):
        assert AdvancementConfig.all_off().enabled() == ()

    def test_only_enables_exactly_one(self):
        config = AdvancementConfig.only("rising_budget")
        assert config.enabled() == ("rising_budget",)

    def test_only_remap_implies_heuristic(self):
        """The paper measures Goo + remapping as a unit."""
        config = AdvancementConfig.only("renumber_graph")
        assert set(config.enabled()) == {"heuristic_upper_bounds", "renumber_graph"}

    def test_all_but_disables_exactly_one(self):
        config = AdvancementConfig.all_but("improved_lbe")
        assert set(config.enabled()) == set(ADVANCEMENT_NAMES) - {"improved_lbe"}

    def test_unknown_names_rejected(self):
        with pytest.raises(ValueError):
            AdvancementConfig.only("telepathy")
        with pytest.raises(ValueError):
            AdvancementConfig.all_but("telepathy")


class TestNeedsHeuristic:
    def test_upper_bounds_need_goo(self):
        assert AdvancementConfig.only("heuristic_upper_bounds").needs_heuristic

    def test_remap_needs_goo(self):
        assert AdvancementConfig.only("renumber_graph").needs_heuristic

    def test_others_do_not(self):
        assert not AdvancementConfig.only("rising_budget").needs_heuristic
        assert not AdvancementConfig.all_off().needs_heuristic


class TestNamesMatchPaperOrder:
    def test_six_advancements(self):
        assert len(ADVANCEMENT_NAMES) == 6

    def test_order(self):
        assert ADVANCEMENT_NAMES[0] == "improved_lbe"
        assert ADVANCEMENT_NAMES[3] == "rising_budget"
        assert ADVANCEMENT_NAMES[5] == "renumber_graph"

    def test_frozen(self):
        config = AdvancementConfig()
        with pytest.raises(Exception):
            config.rising_budget = False
