"""Behavioural tests for accumulated-cost bounding (TDPG_ACB)."""

import pytest

from repro.core.acb import AcbPlanGenerator
from repro.core.plangen import INFINITY
from repro.cost.haas import HaasCostModel
from repro.partitioning import get_partitioning


@pytest.fixture
def acb_generator(small_query):
    return AcbPlanGenerator(
        small_query, get_partitioning("mincut_conservative"), HaasCostModel()
    )


class TestBudgetSemantics:
    def test_infinite_budget_finds_plan(self, acb_generator, small_query):
        plan = acb_generator.run()
        assert plan.vertex_set == small_query.graph.all_vertices

    def test_insufficient_budget_returns_none(self, small_query):
        generator = AcbPlanGenerator(
            small_query, get_partitioning("mincut_conservative"), HaasCostModel()
        )
        full = small_query.graph.all_vertices
        assert generator._tdpg(full, 0.0) is None

    def test_failed_pass_records_lower_bound(self, small_query):
        generator = AcbPlanGenerator(
            small_query, get_partitioning("mincut_conservative"), HaasCostModel()
        )
        full = small_query.graph.all_vertices
        generator._tdpg(full, 1.0)
        assert generator.bounds.lower(full) >= 1.0
        assert generator.stats.failed_builds >= 1

    def test_re_request_below_lower_bound_rejected_fast(self, small_query):
        generator = AcbPlanGenerator(
            small_query, get_partitioning("mincut_conservative"), HaasCostModel()
        )
        full = small_query.graph.all_vertices
        generator._tdpg(full, 10.0)
        enumerated_before = generator.stats.ccps_enumerated
        assert generator._tdpg(full, 5.0) is None
        assert generator.stats.ccps_enumerated == enumerated_before
        assert generator.stats.bound_rejections >= 1

    def test_exact_budget_succeeds(self, small_query):
        probe = AcbPlanGenerator(
            small_query, get_partitioning("mincut_conservative"), HaasCostModel()
        )
        optimal = probe.run().cost
        generator = AcbPlanGenerator(
            small_query, get_partitioning("mincut_conservative"), HaasCostModel()
        )
        plan = generator._tdpg(small_query.graph.all_vertices, optimal)
        assert plan is not None
        assert plan.cost == pytest.approx(optimal)


class TestMemoisation:
    def test_second_run_hits_memo(self, acb_generator):
        acb_generator.run()
        hits_before = acb_generator.stats.memo_hits
        acb_generator._tdpg(acb_generator.query.graph.all_vertices, INFINITY)
        assert acb_generator.stats.memo_hits == hits_before + 1
