"""Tests for the unpruned top-down generator (TDPLANGEN)."""

import itertools

import pytest
from hypothesis import given

from repro.core.plangen import TopDownPlanGenerator
from repro.cost.haas import HaasCostModel
from repro.cost.statistics import StatisticsProvider
from repro.partitioning import get_partitioning
from repro.workload.generator import QueryGenerator
from tests.conftest import small_queries


def _brute_force_optimum(query):
    """Exhaustive optimum over all bushy cross-product-free trees."""
    provider = StatisticsProvider(query)
    model = HaasCostModel()
    graph = query.graph
    best = {}
    for index in range(query.n_relations):
        best[1 << index] = 0.0

    def solve(subset):
        if subset in best:
            return best[subset]
        cheapest = float("inf")
        sub = (subset - 1) & subset
        while sub:
            other = subset & ~sub
            if (
                other
                and graph.is_connected(sub)
                and graph.is_connected(other)
                and graph.are_connected(sub, other)
            ):
                cost = (
                    solve(sub)
                    + solve(other)
                    + model.min_join_cost(provider.stats(sub), provider.stats(other))
                )
                cheapest = min(cheapest, cost)
            sub = (sub - 1) & subset
        best[subset] = cheapest
        return cheapest

    return solve(graph.all_vertices)


class TestOptimality:
    @given(small_queries(max_n=6))
    def test_matches_brute_force(self, query):
        generator = TopDownPlanGenerator(
            query, get_partitioning("mincut_conservative")
        )
        plan = generator.run()
        expected = _brute_force_optimum(query)
        assert plan.cost == pytest.approx(expected, rel=1e-9)

    @pytest.mark.parametrize(
        "enumerator", ["naive", "mincut_lazy", "mincut_branch", "mincut_conservative"]
    )
    def test_all_enumerators_agree(self, small_query, enumerator):
        plan = TopDownPlanGenerator(
            small_query, get_partitioning(enumerator)
        ).run()
        reference = TopDownPlanGenerator(
            small_query, get_partitioning("naive")
        ).run()
        assert plan.cost == pytest.approx(reference.cost)


class TestPlanShape:
    def test_plan_covers_all_relations(self, small_query):
        plan = TopDownPlanGenerator(
            small_query, get_partitioning("mincut_conservative")
        ).run()
        assert plan.vertex_set == small_query.graph.all_vertices

    def test_plan_has_no_cross_products(self, cyclic_query):
        from repro.plans.join_tree import JoinNode

        plan = TopDownPlanGenerator(
            cyclic_query, get_partitioning("mincut_conservative")
        ).run()
        stack = [plan]
        while stack:
            node = stack.pop()
            if isinstance(node, JoinNode):
                assert cyclic_query.graph.are_connected(
                    node.left.vertex_set, node.right.vertex_set
                )
                stack.extend((node.left, node.right))


class TestMemoBehaviour:
    def test_every_plan_class_built_exactly_once(self, small_query):
        generator = TopDownPlanGenerator(
            small_query, get_partitioning("mincut_conservative")
        )
        generator.run()
        # Without pruning, top-down memoization builds every connected
        # plan class, same as DPccp.
        graph = small_query.graph
        connected = sum(
            1
            for s in range(1, 1 << graph.n_vertices)
            if s & (s - 1) and graph.is_connected(s)
        )
        assert generator.stats.plan_classes_built == connected

    def test_single_relation_query(self):
        query = QueryGenerator(seed=1).generate("chain", 1)
        plan = TopDownPlanGenerator(
            query, get_partitioning("mincut_conservative")
        ).run()
        assert plan.cost == 0.0
        assert plan.vertex_set == 1
