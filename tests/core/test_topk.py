"""Top-k ranked enumeration: invariants, prefix property, exactness.

The contract under test (ISSUE acceptance criteria):

* ``optimize_topk(query, k)`` returns validated plans in nondecreasing
  (cost, fingerprint) order, all structurally distinct;
* the prefix property — rank 1 at any ``k`` is bit-for-bit the plan
  ``optimize()`` (k=1) returns;
* full enumerators (pruning "none", DPccp) agree on the exact top-k cost
  vector, and the pruned variants never lose rank 1.
"""

import pytest

from repro import optimize, optimize_topk, run_dpccp
from repro.core.optimizer import Optimizer
from repro.plans.join_tree import plan_fingerprint
from repro.plans.validation import check_finite, validate_plan
from repro.workload.generator import QueryGenerator

PRUNINGS = ("none", "acb", "pcb", "apcb", "apcbi")


def _query(family="chain", size=7, seed=11):
    return QueryGenerator(seed=seed).generate(family, size)


class TestRankedInvariants:
    @pytest.mark.parametrize("pruning", PRUNINGS)
    def test_sorted_distinct_validated(self, pruning):
        query = _query("cycle", 7)
        result = optimize_topk(query, 4, pruning=pruning)
        ranked = result.ranked
        assert 1 <= len(ranked) <= 4
        costs = [plan.cost for plan in ranked]
        assert costs == sorted(costs)
        fingerprints = [plan_fingerprint(plan) for plan in ranked]
        assert len(set(fingerprints)) == len(fingerprints)
        for plan in ranked:
            check_finite(plan)
            validate_plan(plan, query)

    def test_no_rank_beats_rank_one(self):
        query = _query("star", 7)
        result = optimize_topk(query, 5)
        assert all(plan.cost >= result.plan.cost for plan in result.ranked)

    def test_k_one_returns_single_plan(self):
        query = _query()
        result = optimize_topk(query, 1)
        assert result.ranked == (result.plan,)
        assert result.ranked_plans == ()

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            optimize_topk(_query(), 0)
        with pytest.raises(ValueError):
            Optimizer(topk=0)


class TestPrefixProperty:
    @pytest.mark.parametrize("pruning", PRUNINGS + ("apcbi_opt",))
    @pytest.mark.parametrize("family,size", [("chain", 8), ("clique", 5)])
    def test_rank_one_bit_identical_to_optimize(self, pruning, family, size):
        query = _query(family, size)
        single = optimize(query, pruning=pruning)
        ranked = optimize_topk(query, 3, pruning=pruning)
        assert ranked.plan.cost.hex() == single.cost.hex()
        assert ranked.plan.sexpr() == single.plan.sexpr()

    def test_dpccp_prefix(self):
        query = _query("cycle", 8)
        single = run_dpccp(query)
        ranked = run_dpccp(query, topk=3)
        assert ranked.plan.cost.hex() == single.cost.hex()
        assert ranked.plan.sexpr() == single.plan.sexpr()


class TestExactness:
    @pytest.mark.parametrize("family,size", [("chain", 7), ("star", 6), ("cycle", 7)])
    def test_full_enumerators_agree_on_topk(self, family, size):
        # Pruning "none" enumerates everything, as does DPccp: with the
        # same k-bounded memo they must produce identical cost vectors.
        query = _query(family, size)
        top_down = optimize_topk(query, 4, pruning="none")
        bottom_up = run_dpccp(query, topk=4)
        assert [p.cost.hex() for p in top_down.ranked] == [
            p.cost.hex() for p in bottom_up.ranked
        ]

    @pytest.mark.parametrize("pruning", ("acb", "pcb", "apcb", "apcbi"))
    def test_pruned_variants_keep_exact_rank_one(self, pruning):
        # Pruning may legitimately cut ranks beyond the first (the bounds
        # only protect rank 1), but rank 1 must stay exact, and whatever
        # ranks survive can never beat the true k-best at the same rank.
        query = _query("chain", 7, seed=3)
        exact = [p.cost.hex() for p in run_dpccp(query, topk=3).ranked]
        got_plans = optimize_topk(query, 3, pruning=pruning).ranked
        got = [p.cost.hex() for p in got_plans]
        assert got[0] == exact[0]
        for rank, plan in enumerate(got_plans):
            assert plan.cost >= float.fromhex(exact[rank])


class TestCachedRanked:
    def test_cache_hit_replays_full_ranked_list(self):
        from repro.context import PlanCache

        cache = PlanCache()
        optimizer = Optimizer(pruning="apcbi", plan_cache=cache, topk=3)
        query = _query("cycle", 7)
        cold = optimizer.optimize_topk(query, k=3)
        assert cache.misses == 1
        warm = optimizer.optimize_topk(query, k=3)
        assert cache.hits == 1
        assert [p.cost.hex() for p in warm.ranked] == [
            p.cost.hex() for p in cold.ranked
        ]
        assert [p.sexpr() for p in warm.ranked] == [
            p.sexpr() for p in cold.ranked
        ]

    def test_ranked_and_single_best_entries_do_not_collide(self):
        from repro.context import PlanCache

        cache = PlanCache()
        single = Optimizer(pruning="apcbi", plan_cache=cache)
        ranked = Optimizer(pruning="apcbi", plan_cache=cache, topk=3)
        query = _query("chain", 6)
        single.optimize(query)
        result = ranked.optimize_topk(query, k=3)
        # Different keys: the ranked run must not have hit the k=1 entry.
        assert cache.misses == 2
        assert len(result.ranked) > 1

    def test_permuted_repeat_hits_with_ranked_replay(self):
        import random

        from repro.context import PlanCache

        cache = PlanCache()
        optimizer = Optimizer(pruning="apcbi", plan_cache=cache, topk=3)
        query = _query("cycle", 7)
        cold = optimizer.optimize_topk(query, k=3)
        mapping = list(range(query.n_relations))
        random.Random(5).shuffle(mapping)
        permuted = query.relabel(mapping)
        warm = optimizer.optimize_topk(permuted, k=3)
        assert cache.hits == 1
        assert [p.cost.hex() for p in warm.ranked] == [
            p.cost.hex() for p in cold.ranked
        ]
        for plan in warm.ranked:
            validate_plan(plan, permuted)
