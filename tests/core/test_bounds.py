"""Tests for the lB / uB / attempts bookkeeping."""

import pytest

from repro.core.bounds import BoundsTable


class TestLowerBounds:
    def test_unset_reads_zero(self):
        assert BoundsTable().lower(0b11) == 0.0

    def test_raise_lower_is_monotone(self):
        bounds = BoundsTable()
        bounds.raise_lower(0b11, 10.0)
        bounds.raise_lower(0b11, 5.0)  # lower value ignored
        assert bounds.lower(0b11) == 10.0
        bounds.raise_lower(0b11, 20.0)
        assert bounds.lower(0b11) == 20.0


class TestUpperBounds:
    def test_unset_is_none_not_infinity(self):
        """DESIGN.md §4: uB must have an explicit unknown state."""
        assert BoundsTable().upper(0b11) is None

    def test_lower_upper_is_monotone_downward(self):
        bounds = BoundsTable()
        bounds.lower_upper(0b11, 10.0)
        bounds.lower_upper(0b11, 20.0)  # higher value ignored
        assert bounds.upper(0b11) == 10.0
        bounds.lower_upper(0b11, 5.0)
        assert bounds.upper(0b11) == 5.0

    def test_seeded_upper_bounds(self):
        bounds = BoundsTable({0b11: 7.0})
        assert bounds.upper(0b11) == 7.0
        assert bounds.n_upper() == 1


class TestNonFiniteRejection:
    """A poisoned cost model must not corrupt the pruning state."""

    @pytest.mark.parametrize(
        "bogus", [float("nan"), float("inf"), float("-inf")]
    )
    def test_raise_lower_ignores_non_finite(self, bogus):
        bounds = BoundsTable()
        bounds.raise_lower(0b11, 10.0)
        bounds.raise_lower(0b11, bogus)
        assert bounds.lower(0b11) == 10.0

    @pytest.mark.parametrize(
        "bogus", [float("nan"), float("inf"), float("-inf")]
    )
    def test_lower_upper_ignores_non_finite(self, bogus):
        bounds = BoundsTable()
        bounds.lower_upper(0b11, bogus)
        assert bounds.upper(0b11) is None  # NaN previously stuck here
        bounds.lower_upper(0b11, 10.0)
        bounds.lower_upper(0b11, bogus)
        assert bounds.upper(0b11) == 10.0

    def test_seeded_bounds_are_filtered(self):
        bounds = BoundsTable({0b01: float("nan"), 0b10: 5.0})
        assert bounds.upper(0b01) is None
        assert bounds.upper(0b10) == 5.0
        assert bounds.n_upper() == 1


class TestAttempts:
    def test_counting(self):
        bounds = BoundsTable()
        assert bounds.attempts(0b11) == 0
        bounds.count_attempt(0b11)
        bounds.count_attempt(0b11)
        assert bounds.attempts(0b11) == 2
        assert bounds.attempts(0b101) == 0


class TestDiagnostics:
    def test_counts(self):
        bounds = BoundsTable()
        bounds.raise_lower(1, 1.0)
        bounds.raise_lower(2, 1.0)
        bounds.lower_upper(1, 5.0)
        assert bounds.n_lower() == 2
        assert bounds.n_upper() == 1
