"""The paper's central safety property: pruning is risk-free (§IV).

Every pruned plan generator must return exactly the optimal cost that
DPccp finds, on every query, for every enumerator, for every advancement
configuration.  These are the most important tests in the suite.
"""

import pytest
from hypothesis import given, settings

from repro.baselines.dpccp import DPccp
from repro.core.advancements import ADVANCEMENT_NAMES, AdvancementConfig
from repro.core.optimizer import Optimizer, run_dpccp
from repro.cost.cout import CoutCostModel
from repro.cost.haas import HaasCostModel
from tests.conftest import small_queries

ENUMERATORS = ("mincut_lazy", "mincut_branch", "mincut_conservative")
PRUNINGS = ("none", "acb", "pcb", "apcb", "apcbi", "apcbi_opt")


def _assert_optimal(query, enumerator, pruning, config=None, cost_model=HaasCostModel):
    baseline = run_dpccp(query, cost_model)
    result = Optimizer(
        enumerator=enumerator,
        pruning=pruning,
        cost_model_factory=cost_model,
        config=config,
    ).optimize(query)
    assert result.cost == pytest.approx(baseline.cost, rel=1e-9), (
        f"{enumerator}/{pruning} lost optimality on {query.describe()}"
    )
    assert result.plan.vertex_set == query.graph.all_vertices


class TestEveryPruningPreservesOptimality:
    @pytest.mark.parametrize("pruning", PRUNINGS)
    @given(query=small_queries(max_n=7))
    def test_with_conservative_enumerator(self, pruning, query):
        _assert_optimal(query, "mincut_conservative", pruning)

    @pytest.mark.parametrize("enumerator", ENUMERATORS)
    @given(query=small_queries(max_n=6))
    def test_apcbi_with_every_enumerator(self, enumerator, query):
        _assert_optimal(query, enumerator, "apcbi")

    @pytest.mark.parametrize("enumerator", ENUMERATORS)
    @given(query=small_queries(max_n=6))
    def test_apcb_with_every_enumerator(self, enumerator, query):
        _assert_optimal(query, enumerator, "apcb")


class TestAdvancementConfigsPreserveOptimality:
    @pytest.mark.parametrize("name", ADVANCEMENT_NAMES)
    @given(query=small_queries(max_n=6))
    def test_single_advancement(self, name, query):
        _assert_optimal(
            query, "mincut_conservative", "apcbi", AdvancementConfig.only(name)
        )

    @pytest.mark.parametrize("name", ADVANCEMENT_NAMES)
    @given(query=small_queries(max_n=6))
    def test_all_but_one(self, name, query):
        _assert_optimal(
            query, "mincut_conservative", "apcbi", AdvancementConfig.all_but(name)
        )

    @given(query=small_queries(max_n=6))
    def test_all_off_matches_apcb(self, query):
        _assert_optimal(
            query, "mincut_conservative", "apcbi", AdvancementConfig.all_off()
        )


class TestAlternativeCostModel:
    @given(query=small_queries(max_n=6))
    def test_apcbi_under_cout(self, query):
        _assert_optimal(
            query, "mincut_conservative", "apcbi", cost_model=CoutCostModel
        )

    @given(query=small_queries(max_n=6))
    def test_apcb_under_cout(self, query):
        _assert_optimal(query, "mincut_conservative", "apcb", cost_model=CoutCostModel)


class TestPlanCostInternalConsistency:
    @given(query=small_queries(max_n=6))
    def test_reported_cost_equals_tree_cost(self, query):
        result = Optimizer(pruning="apcbi").optimize(query)
        assert result.cost == result.plan.cost
        # Recompute the tree cost from its parts.
        from repro.plans.join_tree import JoinNode

        total = 0.0
        stack = [result.plan]
        while stack:
            node = stack.pop()
            if isinstance(node, JoinNode):
                total += node.operator_cost
                stack.extend((node.left, node.right))
        assert total == pytest.approx(result.cost, rel=1e-9)
