"""Tests for the IKKBZ heuristic (extension)."""

import itertools

import pytest
from hypothesis import given

from repro.baselines.dpccp import DPccp
from repro.cost.cout import CoutCostModel
from repro.cost.haas import HaasCostModel
from repro.cost.statistics import StatisticsProvider
from repro.heuristics.ikkbz import IKKBZ
from repro.plans.builder import PlanBuilder
from repro.plans.join_tree import JoinNode
from repro.plans.validation import validate_plan
from tests.conftest import small_queries


def _haas_builder(query):
    return PlanBuilder(StatisticsProvider(query), HaasCostModel())


def _cout_builder(query):
    provider = StatisticsProvider(query)
    return PlanBuilder(provider, CoutCostModel().bind(provider))


def _optimal_left_deep_cout(query):
    """Brute force: the cheapest connected left-deep order under C_out."""
    provider = StatisticsProvider(query)
    graph = query.graph
    best = float("inf")
    for order in itertools.permutations(range(query.n_relations)):
        prefix = 1 << order[0]
        cost = 0.0
        feasible = True
        for vertex in order[1:]:
            if not graph.are_connected(prefix, 1 << vertex):
                feasible = False
                break
            prefix |= 1 << vertex
            cost += provider.cardinality(prefix)
        if feasible:
            best = min(best, cost)
    return best


class TestPlanShape:
    @given(query=small_queries(max_n=6))
    def test_valid_tree(self, query):
        result = IKKBZ().build(query, _haas_builder(query))
        validate_plan(result.tree, query, HaasCostModel())

    @given(query=small_queries(max_n=6))
    def test_left_deep(self, query):
        """IKKBZ emits linear (left-deep modulo commutation) trees."""
        result = IKKBZ().build(query, _haas_builder(query))
        node = result.tree
        while isinstance(node, JoinNode):
            # one side of every join is a single relation
            left_single = node.left.vertex_set & (node.left.vertex_set - 1) == 0
            right_single = node.right.vertex_set & (node.right.vertex_set - 1) == 0
            assert left_single or right_single
            node = node.right if left_single else node.left

    def test_single_relation(self, generator):
        query = generator.generate("chain", 1)
        result = IKKBZ().build(query, _haas_builder(query))
        assert result.tree.vertex_set == 1


class TestOptimality:
    @given(
        query=small_queries(
            families=("chain", "star", "acyclic"), min_n=3, max_n=6
        )
    )
    def test_left_deep_optimal_under_cout_on_trees(self, query):
        """The textbook IKKBZ guarantee: optimal left-deep plan for tree
        query graphs under an ASI cost function (C_out is one)."""
        result = IKKBZ().build(query, _cout_builder(query))
        expected = _optimal_left_deep_cout(query)
        assert result.cost == pytest.approx(expected, rel=1e-9)

    @given(query=small_queries(max_n=6))
    def test_sound_upper_bound_everywhere(self, query):
        """Even on cyclic graphs (spanning-tree fallback) the result is a
        real plan, hence a sound upper bound for APCBI."""
        optimal = DPccp(query, HaasCostModel()).run()
        result = IKKBZ().build(query, _haas_builder(query))
        assert result.cost >= optimal.cost - 1e-6 * max(1.0, optimal.cost)


class TestSubtreeCosts:
    def test_covers_every_join(self, small_query):
        result = IKKBZ().build(small_query, _haas_builder(small_query))
        assert len(result.subtree_costs) == small_query.n_relations - 1
