"""Behavioural tests for predicted-cost bounding and the APCB combination."""

import pytest

from repro.core.apcb import ApcbPlanGenerator
from repro.core.pcb import PcbPlanGenerator
from repro.core.plangen import TopDownPlanGenerator
from repro.cost.haas import HaasCostModel
from repro.partitioning import get_partitioning
from repro.workload.generator import QueryGenerator


@pytest.fixture
def explosive_query():
    """A random-join cyclic query: exploding intermediates prune well."""
    return QueryGenerator(seed=17).generate("cyclic", 8, "random")


class TestPcb:
    def test_pcb_considers_no_more_ccps_than_unpruned(self, explosive_query):
        unpruned = TopDownPlanGenerator(
            explosive_query, get_partitioning("mincut_conservative")
        )
        unpruned.run()
        pruned = PcbPlanGenerator(
            explosive_query, get_partitioning("mincut_conservative")
        )
        pruned.run()
        assert pruned.stats.ccps_considered <= unpruned.stats.ccps_considered
        assert pruned.stats.pcb_prunes > 0

    def test_pcb_counts_lbe_evaluations(self, explosive_query):
        generator = PcbPlanGenerator(
            explosive_query, get_partitioning("mincut_conservative")
        )
        generator.run()
        assert generator.stats.lbe_evaluations == generator.stats.ccps_enumerated

    def test_pcb_never_fails_builds(self, explosive_query):
        """PCB has no budgets, so every requested class gets a plan."""
        generator = PcbPlanGenerator(
            explosive_query, get_partitioning("mincut_conservative")
        )
        generator.run()
        assert generator.stats.failed_builds == 0


class TestApcb:
    def test_combines_both_prune_kinds(self, explosive_query):
        generator = ApcbPlanGenerator(
            explosive_query, get_partitioning("mincut_conservative")
        )
        generator.run()
        assert generator.stats.pcb_prunes > 0  # predicted-cost component
        # The accumulated component shows up as budgeted failures or
        # lower-bound rejections on at least some queries of this shape.
        assert generator.stats.failed_builds >= 0

    def test_apcb_builds_no_more_classes_than_pcb(self, explosive_query):
        pcb = PcbPlanGenerator(
            explosive_query, get_partitioning("mincut_conservative")
        )
        pcb.run()
        apcb = ApcbPlanGenerator(
            explosive_query, get_partitioning("mincut_conservative")
        )
        apcb.run()
        assert apcb.stats.plan_classes_built <= pcb.stats.plan_classes_built

    def test_insufficient_budget_returns_none(self, explosive_query):
        generator = ApcbPlanGenerator(
            explosive_query, get_partitioning("mincut_conservative"), HaasCostModel()
        )
        assert generator._tdpg(explosive_query.graph.all_vertices, 0.5) is None
        assert generator.bounds.lower(explosive_query.graph.all_vertices) >= 0.5
