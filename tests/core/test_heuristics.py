"""Tests for the pluggable join heuristics."""

import pytest
from hypothesis import given

from repro.baselines.dpccp import DPccp
from repro.cost.haas import HaasCostModel
from repro.cost.statistics import StatisticsProvider
from repro.errors import UnknownAlgorithmError
from repro.heuristics import (
    HEURISTICS,
    GreedyOperatorOrdering,
    MinSelectivity,
    QuickPick,
    available_heuristics,
    get_heuristic,
)
from repro.plans.builder import PlanBuilder
from repro.plans.validation import validate_plan
from tests.conftest import small_queries


def _builder(query):
    return PlanBuilder(StatisticsProvider(query), HaasCostModel())


class TestRegistry:
    def test_registered_heuristics(self):
        assert available_heuristics() == [
            "goo", "ikkbz", "min_selectivity", "quickpick",
        ]

    def test_lookup(self):
        assert isinstance(get_heuristic("goo"), GreedyOperatorOrdering)
        assert isinstance(get_heuristic("quickpick"), QuickPick)
        assert isinstance(get_heuristic("min_selectivity"), MinSelectivity)

    def test_unknown_raises(self):
        with pytest.raises(UnknownAlgorithmError):
            get_heuristic("genetic")

    def test_factories_return_fresh_instances(self):
        assert get_heuristic("quickpick") is not get_heuristic("quickpick")


@pytest.mark.parametrize("name", sorted(HEURISTICS))
class TestEveryHeuristic:
    @given(query=small_queries(max_n=6))
    def test_tree_is_valid_and_upper_bounds_optimum(self, name, query):
        heuristic = get_heuristic(name)
        result = heuristic.build(query, _builder(query))
        validate_plan(result.tree, query, HaasCostModel())
        optimal = DPccp(query, HaasCostModel()).run()
        assert result.cost >= optimal.cost - 1e-6 * max(1.0, optimal.cost)

    def test_subtree_costs_cover_all_joins(self, name, small_query):
        result = get_heuristic(name).build(small_query, _builder(small_query))
        assert len(result.subtree_costs) == small_query.n_relations - 1

    def test_deterministic(self, name, small_query):
        a = get_heuristic(name).build(small_query, _builder(small_query))
        b = get_heuristic(name).build(small_query, _builder(small_query))
        assert a.tree.sexpr() == b.tree.sexpr()


class TestQuickPick:
    def test_trial_count_validated(self):
        with pytest.raises(ValueError):
            QuickPick(n_trials=0)

    def test_more_trials_never_worse(self, cyclic_query):
        few = QuickPick(n_trials=1, seed=5).build(cyclic_query, _builder(cyclic_query))
        many = QuickPick(n_trials=32, seed=5).build(
            cyclic_query, _builder(cyclic_query)
        )
        assert many.cost <= few.cost

    def test_seed_controls_sampling(self, cyclic_query):
        a = QuickPick(n_trials=2, seed=1).build(cyclic_query, _builder(cyclic_query))
        b = QuickPick(n_trials=2, seed=2).build(cyclic_query, _builder(cyclic_query))
        # Different seeds may coincide on tiny queries, but the API contract
        # is that the same seed reproduces exactly.
        again = QuickPick(n_trials=2, seed=1).build(
            cyclic_query, _builder(cyclic_query)
        )
        assert a.tree.sexpr() == again.tree.sexpr()
        assert a.cost == again.cost
        assert b.cost > 0


class TestHeuristicsDiffer:
    def test_goo_and_min_selectivity_can_disagree(self, generator):
        """The two greedy criteria produce different trees somewhere."""
        differs = False
        for seed in range(8):
            query = generator.generate("cyclic", 8, "random")
            goo = get_heuristic("goo").build(query, _builder(query))
            minsel = get_heuristic("min_selectivity").build(query, _builder(query))
            if goo.tree.sexpr() != minsel.tree.sexpr():
                differs = True
                break
        assert differs
