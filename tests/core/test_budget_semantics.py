"""Budget-oracle properties of the bounded plan generators.

Branch-and-bound contracts, checked against the DPccp-computed optimum:

* a request with budget >= the optimal cost returns an optimal tree;
* a request with budget < the optimal cost returns ``None``;
* after any sequence of requests, every proven lower bound ``lB[S]`` is
  admissible (never exceeds the true optimum of its class) and every
  upper bound ``uB[S]`` is sound (never below it).
"""

import pytest
from hypothesis import given, strategies as st

from repro.baselines.dpccp import DPccp
from repro.core.acb import AcbPlanGenerator
from repro.core.apcb import ApcbPlanGenerator
from repro.core.apcbi import ApcbiPlanGenerator
from repro.cost.haas import HaasCostModel
from repro.partitioning import get_partitioning
from tests.conftest import small_queries

GENERATORS = (AcbPlanGenerator, ApcbPlanGenerator, ApcbiPlanGenerator)


def _optimum(query):
    return DPccp(query, HaasCostModel()).run().cost


@pytest.mark.parametrize("generator_cls", GENERATORS)
class TestBudgetThreshold:
    @given(query=small_queries(max_n=6), factor=st.floats(1.0, 4.0))
    def test_sufficient_budget_returns_optimum(self, generator_cls, query, factor):
        optimum = _optimum(query)
        generator = generator_cls(
            query, get_partitioning("mincut_conservative"), HaasCostModel()
        )
        tree = generator._tdpg(query.graph.all_vertices, optimum * factor)
        assert tree is not None
        assert tree.cost == pytest.approx(optimum, rel=1e-9)

    @given(query=small_queries(max_n=6), factor=st.floats(0.05, 0.98))
    def test_insufficient_budget_returns_none(self, generator_cls, query, factor):
        optimum = _optimum(query)
        generator = generator_cls(
            query, get_partitioning("mincut_conservative"), HaasCostModel()
        )
        assert generator._tdpg(query.graph.all_vertices, optimum * factor) is None


@pytest.mark.parametrize("generator_cls", GENERATORS)
class TestBoundAdmissibilityAfterMixedRequests:
    @given(
        query=small_queries(max_n=6),
        factors=st.lists(st.floats(0.1, 2.0), min_size=1, max_size=4),
    )
    def test_lower_bounds_stay_admissible(self, generator_cls, query, factors):
        """Stress the tables with a mix of failing and succeeding requests,
        then verify every recorded bound against the DPccp oracle."""
        oracle = DPccp(query, HaasCostModel())
        oracle.run()
        optimum = oracle.memo.best_cost(query.graph.all_vertices)
        generator = generator_cls(
            query, get_partitioning("mincut_conservative"), HaasCostModel()
        )
        for factor in factors:
            generator._tdpg(query.graph.all_vertices, optimum * factor)
        for vertex_set, tree in oracle.memo.entries():
            true_cost = tree.cost
            assert generator.bounds.lower(vertex_set) <= true_cost + 1e-6 * max(
                1.0, true_cost
            )
            if isinstance(generator, ApcbiPlanGenerator):
                upper = generator.bounds.upper(vertex_set)
                if upper is not None:
                    assert upper >= true_cost - 1e-6 * max(1.0, true_cost)

    @given(query=small_queries(max_n=6))
    def test_memo_entries_are_optimal(self, generator_cls, query):
        """Registered trees are optimal for their class (the invariant the
        improved LBE relies on)."""
        oracle = DPccp(query, HaasCostModel())
        oracle.run()
        generator = generator_cls(
            query, get_partitioning("mincut_conservative"), HaasCostModel()
        )
        generator.run()
        for vertex_set, tree in generator.memo.entries():
            assert tree.cost == pytest.approx(
                oracle.memo.best_cost(vertex_set), rel=1e-9
            )
