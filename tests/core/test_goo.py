"""Tests for the GOO heuristic."""

import pytest
from hypothesis import given

from repro.baselines.dpccp import DPccp
from repro.core.goo import run_goo
from repro.cost.haas import HaasCostModel
from repro.cost.statistics import StatisticsProvider
from repro.plans.builder import PlanBuilder
from tests.conftest import small_queries


def _builder(query):
    return PlanBuilder(StatisticsProvider(query), HaasCostModel())


class TestTreeValidity:
    def test_covers_all_relations(self, small_query):
        result = run_goo(small_query, _builder(small_query))
        assert result.tree.vertex_set == small_query.graph.all_vertices
        assert sorted(result.tree.relation_indices()) == list(
            range(small_query.n_relations)
        )

    def test_every_join_is_edge_connected(self, cyclic_query):
        """GOO never introduces cross products."""
        from repro.plans.join_tree import JoinNode

        result = run_goo(cyclic_query, _builder(cyclic_query))
        stack = [result.tree]
        while stack:
            node = stack.pop()
            if isinstance(node, JoinNode):
                assert cyclic_query.graph.are_connected(
                    node.left.vertex_set, node.right.vertex_set
                )
                stack.extend((node.left, node.right))

    def test_single_relation_query(self, generator):
        query = generator.generate("chain", 1)
        result = run_goo(query, _builder(query))
        assert result.tree.vertex_set == 1
        assert result.cost == 0.0


class TestUpperBounds:
    def test_subtree_costs_cover_every_join_node(self, small_query):
        result = run_goo(small_query, _builder(small_query))
        assert len(result.subtree_costs) == small_query.n_relations - 1
        assert result.tree.vertex_set in result.subtree_costs
        assert result.subtree_costs[result.tree.vertex_set] == result.cost

    @given(small_queries(max_n=6))
    def test_goo_cost_upper_bounds_optimal(self, query):
        """A heuristic plan can never beat the optimum (uB validity)."""
        optimal = DPccp(query, HaasCostModel()).run()
        result = run_goo(query, _builder(query))
        assert result.cost >= optimal.cost - 1e-6 * max(1.0, optimal.cost)

    @given(small_queries(max_n=6))
    def test_every_subtree_cost_upper_bounds_its_class(self, query):
        algorithm = DPccp(query, HaasCostModel())
        algorithm.run()
        result = run_goo(query, _builder(query))
        for vertex_set, cost in result.subtree_costs.items():
            best = algorithm.memo.best(vertex_set)
            assert best is not None
            assert cost >= best.cost - 1e-6 * max(1.0, best.cost)


class TestDeterminism:
    def test_same_query_same_tree(self, small_query):
        a = run_goo(small_query, _builder(small_query))
        b = run_goo(small_query, _builder(small_query))
        assert a.tree.sexpr() == b.tree.sexpr()
        assert a.cost == b.cost

    def test_repr(self, small_query):
        assert "GooResult" in repr(run_goo(small_query, _builder(small_query)))
