"""Tests for the optimizer facade."""

import pytest

from repro.core.advancements import AdvancementConfig
from repro.core.optimizer import (
    Optimizer,
    algorithm_label,
    optimize,
    run_dpccp,
)
from repro.cost.cout import CoutCostModel
from repro.errors import UnknownAlgorithmError


class TestValidation:
    def test_unknown_enumerator_rejected(self):
        with pytest.raises(UnknownAlgorithmError):
            Optimizer(enumerator="mincut_psychic")

    def test_unknown_pruning_rejected(self):
        with pytest.raises(UnknownAlgorithmError):
            Optimizer(pruning="clairvoyance")


class TestLabels:
    def test_paper_names(self):
        assert algorithm_label("mincut_conservative", "apcbi") == "TDMcC_APCBI"
        assert algorithm_label("mincut_lazy", "none") == "TDMcL"
        assert algorithm_label("mincut_branch", "apcbi_opt") == "TDMcB_APCBI_Opt"

    def test_unknown_pruning_label_rejected(self):
        with pytest.raises(UnknownAlgorithmError):
            algorithm_label("mincut_lazy", "bogus")

    def test_result_label(self, small_query):
        result = optimize(small_query, pruning="apcb")
        assert result.label == "TDMcC_APCB"

    def test_dpccp_label(self, small_query):
        assert run_dpccp(small_query).label == "DPccp"


class TestResultEnvelope:
    def test_fields(self, small_query):
        result = optimize(small_query)
        assert result.plan.vertex_set == small_query.graph.all_vertices
        assert result.cost == result.plan.cost
        assert result.elapsed > 0
        assert result.memo_entries >= small_query.n_relations
        assert result.query is small_query
        assert result.enumerator == "mincut_conservative"
        assert result.pruning == "apcbi"

    def test_explain_renders_plan(self, small_query):
        text = optimize(small_query).explain()
        assert "Scan" in text and "Join" in text


class TestRenumberingPath:
    def test_plan_relabeled_back_to_original_indices(self, cyclic_query):
        result = optimize(
            cyclic_query,
            pruning="apcbi",
            config=AdvancementConfig.all_on(),
        )
        assert sorted(result.plan.relation_indices()) == list(
            range(cyclic_query.n_relations)
        )

    def test_renumber_skipped_for_tiny_queries(self, generator):
        query = generator.generate("chain", 2)
        result = optimize(query, pruning="apcbi")
        assert result.plan.vertex_set == 0b11

    def test_renumber_off_still_optimal(self, cyclic_query):
        with_remap = optimize(cyclic_query, pruning="apcbi")
        without = optimize(
            cyclic_query,
            pruning="apcbi",
            config=AdvancementConfig.all_but("renumber_graph"),
        )
        assert with_remap.cost == pytest.approx(without.cost)


class TestApcbiOpt:
    def test_matches_apcbi_cost(self, cyclic_query):
        apcbi = optimize(cyclic_query, pruning="apcbi")
        opt = optimize(cyclic_query, pruning="apcbi_opt")
        assert opt.cost == pytest.approx(apcbi.cost)

    def test_oracle_time_excluded_from_elapsed(self, cyclic_query):
        """APCBI_Opt's elapsed must not include the DPccp pre-pass; as a
        proxy, it should stay within a small factor of plain APCBI."""
        apcbi = optimize(cyclic_query, pruning="apcbi")
        opt = optimize(cyclic_query, pruning="apcbi_opt")
        assert opt.elapsed < 20 * max(apcbi.elapsed, 1e-4)


class TestCostModelInjection:
    def test_cout_factory(self, small_query):
        result = optimize(small_query, cost_model_factory=CoutCostModel)
        baseline = run_dpccp(small_query, cost_model_factory=CoutCostModel)
        assert result.cost == pytest.approx(baseline.cost)


class TestOptimizerReuse:
    def test_one_optimizer_many_queries(self, generator):
        optimizer = Optimizer(pruning="apcbi")
        for family in ("chain", "cycle", "acyclic"):
            query = generator.generate(family, 6)
            baseline = run_dpccp(query)
            assert optimizer.optimize(query).cost == pytest.approx(baseline.cost)
