"""Behavioural tests for the six-advancement APCBI generator."""

import pytest

from repro.baselines.dpccp import DPccp
from repro.core.advancements import AdvancementConfig
from repro.core.apcb import ApcbPlanGenerator
from repro.core.apcbi import ApcbiPlanGenerator, budget_slack
from repro.cost.haas import HaasCostModel
from repro.partitioning import get_partitioning
from repro.workload.generator import QueryGenerator


@pytest.fixture
def explosive_query():
    return QueryGenerator(seed=23).generate("cyclic", 8, "random")


def _apcbi(query, config=None, upper_bounds=None):
    return ApcbiPlanGenerator(
        query,
        get_partitioning("mincut_conservative"),
        HaasCostModel(),
        config=config,
        upper_bounds=upper_bounds,
    )


class TestHeuristicUpperBounds:
    def test_goo_seeds_the_bounds_table(self, explosive_query):
        generator = _apcbi(
            explosive_query, AdvancementConfig.only("heuristic_upper_bounds")
        )
        assert generator.bounds.n_upper() == explosive_query.n_relations - 1
        assert generator.heuristic_tree is not None

    def test_no_goo_when_disabled(self, explosive_query):
        generator = _apcbi(explosive_query, AdvancementConfig.all_off())
        assert generator.bounds.n_upper() == 0
        assert generator.heuristic_tree is None

    def test_explicit_upper_bounds_suppress_goo(self, explosive_query):
        generator = _apcbi(
            explosive_query,
            AdvancementConfig.only("heuristic_upper_bounds"),
            upper_bounds={explosive_query.graph.all_vertices: 1e18},
        )
        assert generator.heuristic_tree is None
        assert generator.bounds.n_upper() == 1


class TestRisingBudget:
    def test_budget_raises_counted(self, explosive_query):
        generator = _apcbi(explosive_query, AdvancementConfig.only("rising_budget"))
        generator.run()
        # Random-join cyclic queries trigger repeated requests; the rising
        # budget must fire at least once on this fixed workload.
        assert generator.stats.budget_raises > 0

    def test_attempts_are_counted(self, explosive_query):
        generator = _apcbi(explosive_query, AdvancementConfig.all_on())
        generator.run()
        full = explosive_query.graph.all_vertices
        assert generator.bounds.attempts(full) >= 1


class TestImprovedLowerBounds:
    def test_failed_pass_records_max_of_budget_and_nlb(self, explosive_query):
        generator = _apcbi(
            explosive_query, AdvancementConfig.only("improved_lower_bounds")
        )
        full = explosive_query.graph.all_vertices
        result = generator._tdpg(full, 1.0)
        assert result is None
        # With improved lower bounds the proven bound exceeds the tiny
        # budget (nlB reflects real operator costs).
        assert generator.bounds.lower(full) > 1.0

    def test_plain_bound_without_advancement(self, explosive_query):
        generator = _apcbi(explosive_query, AdvancementConfig.all_off())
        full = explosive_query.graph.all_vertices
        generator._tdpg(full, 1.0)
        assert generator.bounds.lower(full) == pytest.approx(1.0)


class TestApcbiVersusApcb:
    def test_apcbi_builds_fewer_classes(self, explosive_query):
        apcb = ApcbPlanGenerator(
            explosive_query, get_partitioning("mincut_conservative")
        )
        apcb.run()
        apcbi = _apcbi(explosive_query)
        apcbi.run()
        assert apcbi.stats.plan_classes_built <= apcb.stats.plan_classes_built

    def test_apcbi_avoids_apcb_re_enumeration_blowup(self):
        """The worst-case fix: APCBI's enumeration stays near DPccp's count."""
        query = QueryGenerator(seed=5).generate("cyclic", 9, "fk")
        apcb = ApcbPlanGenerator(query, get_partitioning("mincut_conservative"))
        apcb.run()
        apcbi = _apcbi(query)
        apcbi.run()
        assert apcbi.stats.ccps_enumerated < apcb.stats.ccps_enumerated


class TestOracleBounds:
    def test_oracle_upper_bounds_are_used(self, explosive_query):
        oracle = DPccp(explosive_query, HaasCostModel())
        optimal = oracle.run()
        generator = _apcbi(
            explosive_query,
            AdvancementConfig.all_on(),
            upper_bounds=oracle.optimal_class_costs(),
        )
        plan = generator.run()
        assert plan.cost == pytest.approx(optimal.cost)


class TestBudgetSlack:
    def test_slack_is_tiny_and_positive(self):
        assert budget_slack(100.0) > 100.0
        assert budget_slack(100.0) < 100.0 + 1e-5
        assert budget_slack(0.0) > 0.0

    def test_slack_scales_with_magnitude(self):
        assert budget_slack(1e12) - 1e12 > budget_slack(1.0) - 1.0


class TestStarOverhead:
    def test_star_queries_disable_pruning(self):
        """§V-B: star selectivities make every plan equal, so APCBI builds
        every plan class DPccp builds (avg_s = 1 in Table III)."""
        query = QueryGenerator(seed=31).generate("star", 8)
        oracle = DPccp(query, HaasCostModel())
        oracle.run()
        generator = _apcbi(query)
        generator.run()
        assert (
            generator.stats.plan_classes_built
            == oracle.stats.plan_classes_built
        )
