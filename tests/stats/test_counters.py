"""Tests for the run counters."""

from repro.stats.counters import OptimizationStats


class TestAsDict:
    def test_round_trip_keys(self):
        stats = OptimizationStats(ccps_enumerated=3, failed_builds=1)
        payload = stats.as_dict()
        assert payload["ccps_enumerated"] == 3
        assert payload["failed_builds"] == 1
        assert set(payload) == set(OptimizationStats().as_dict())

    def test_defaults_are_zero(self):
        assert all(v == 0 for v in OptimizationStats().as_dict().values())


class TestMerge:
    def test_elementwise_sum(self):
        a = OptimizationStats(ccps_enumerated=3, memo_hits=2)
        b = OptimizationStats(ccps_enumerated=4, pcb_prunes=5)
        merged = a.merge(b)
        assert merged.ccps_enumerated == 7
        assert merged.memo_hits == 2
        assert merged.pcb_prunes == 5

    def test_merge_leaves_inputs_untouched(self):
        a = OptimizationStats(ccps_enumerated=1)
        b = OptimizationStats(ccps_enumerated=2)
        a.merge(b)
        assert a.ccps_enumerated == 1
        assert b.ccps_enumerated == 2
