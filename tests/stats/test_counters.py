"""Tests for the run counters."""

from dataclasses import fields

from repro.stats.counters import OptimizationStats


class TestFieldParity:
    def test_as_dict_covers_every_field(self):
        # as_dict/merge are driven off dataclasses.fields(); this pins the
        # invariant so a hand-maintained view can never drift again.
        declared = {spec.name for spec in fields(OptimizationStats)}
        assert set(OptimizationStats().as_dict()) == declared

    def test_merge_sums_every_field(self):
        a = OptimizationStats(**{
            spec.name: index + 1
            for index, spec in enumerate(fields(OptimizationStats))
        })
        b = OptimizationStats(**{
            spec.name: 100 for spec in fields(OptimizationStats)
        })
        merged = a.merge(b)
        for index, spec in enumerate(fields(OptimizationStats)):
            assert getattr(merged, spec.name) == index + 1 + 100


class TestAsDict:
    def test_round_trip_keys(self):
        stats = OptimizationStats(ccps_enumerated=3, failed_builds=1)
        payload = stats.as_dict()
        assert payload["ccps_enumerated"] == 3
        assert payload["failed_builds"] == 1
        assert set(payload) == set(OptimizationStats().as_dict())

    def test_defaults_are_zero(self):
        assert all(v == 0 for v in OptimizationStats().as_dict().values())


class TestMerge:
    def test_elementwise_sum(self):
        a = OptimizationStats(ccps_enumerated=3, memo_hits=2)
        b = OptimizationStats(ccps_enumerated=4, pcb_prunes=5)
        merged = a.merge(b)
        assert merged.ccps_enumerated == 7
        assert merged.memo_hits == 2
        assert merged.pcb_prunes == 5

    def test_merge_leaves_inputs_untouched(self):
        a = OptimizationStats(ccps_enumerated=1)
        b = OptimizationStats(ccps_enumerated=2)
        a.merge(b)
        assert a.ccps_enumerated == 1
        assert b.ccps_enumerated == 2
