"""Tests for GETCONNECTEDPARTS against the full-sweep oracle."""

from hypothesis import given, strategies as st

from repro.graph import bitset
from repro.graph.generators import chain_graph, star_graph
from repro.partitioning.connected_parts import (
    connected_parts_simple,
    get_connected_parts,
)
from tests.conftest import connected_graphs


class TestSimpleOracle:
    def test_components_of_chain_complement(self):
        graph = chain_graph(5)
        # S = all, C = {2}: complement splits into {0,1} and {3,4}.
        parts = connected_parts_simple(graph, graph.all_vertices, 0b00100)
        assert sorted(parts) == [0b00011, 0b11000]

    def test_empty_complement(self):
        graph = chain_graph(3)
        assert connected_parts_simple(graph, graph.all_vertices, 0b111) == []


class TestPaperAlgorithm:
    def test_connected_complement_single_part(self):
        graph = chain_graph(5)
        # C = {0, 1}, just grew by v = 1: complement {2, 3, 4} is connected.
        parts = get_connected_parts(graph, graph.all_vertices, 0b00011, 0b00010)
        assert parts == [0b11100]

    def test_star_split_into_leaves(self):
        graph = star_graph(4)
        # C = {leaf 1, hub 0} after adding the hub: leaves 2, 3 separate.
        parts = get_connected_parts(graph, graph.all_vertices, 0b0011, 0b0001)
        assert sorted(parts) == [0b0100, 0b1000]

    def test_empty_complement_gives_no_parts(self):
        graph = chain_graph(3)
        assert get_connected_parts(graph, graph.all_vertices, 0b111, 0b100) == []

    @given(connected_graphs(min_vertices=3, max_vertices=8), st.data())
    def test_matches_oracle_along_growth_paths(self, graph, data):
        """Replay the MinCutConservative invariant: grow a connected C whose
        complement S \\ C is connected (the precondition of the Fig. 18
        early exit), add one neighbor v, and compare the part computation
        against the full-sweep oracle."""
        s = graph.all_vertices
        c = s & -s  # start at the lowest vertex
        # Establish the invariant for the start state: absorb every
        # complement component except the largest (exactly what the
        # enumerator's jump branches do).
        parts = connected_parts_simple(graph, s, c)
        if parts:
            c = s & ~max(parts, key=bitset.bit_count)
        for _ in range(graph.n_vertices - 1):
            if not (s & ~c):
                break
            neighbors = graph.neighborhood(c, s)
            if not neighbors:
                break
            v = data.draw(
                st.sampled_from([1 << i for i in bitset.iter_bits(neighbors)])
            )
            expected = sorted(connected_parts_simple(graph, s, c | v))
            got = sorted(get_connected_parts(graph, s, c | v, v))
            assert got == expected
            # Re-establish the invariant for the next step.
            if not expected:
                break
            keep = max(expected, key=bitset.bit_count)
            c = s & ~keep
