"""Tests for naive partitioning (the oracle)."""

import pytest

from repro.graph import bitset, generators
from repro.partitioning.naive import NaivePartitioning


@pytest.fixture
def naive():
    return NaivePartitioning()


class TestKnownCounts:
    def test_chain3(self, naive):
        graph = generators.chain_graph(3)
        pairs = list(naive.partitions(graph, graph.all_vertices))
        assert len(pairs) == 2

    def test_star4_full_set(self, naive):
        graph = generators.star_graph(4)
        pairs = list(naive.partitions(graph, graph.all_vertices))
        # Each leaf vs the rest; hub-side splits are their symmetric twins.
        assert len(pairs) == 3

    def test_cycle4_full_set(self, naive):
        graph = generators.cycle_graph(4)
        pairs = list(naive.partitions(graph, graph.all_vertices))
        assert len(pairs) == 6  # choose 2 of 4 edges to cut

    def test_clique_full_set(self, naive):
        graph = generators.clique_graph(4)
        pairs = list(naive.partitions(graph, graph.all_vertices))
        assert len(pairs) == 2 ** 3 - 1  # every proper split is valid


class TestInvariants:
    @pytest.mark.parametrize("family", ["chain", "star", "cycle", "clique"])
    def test_pairs_are_valid_ccps(self, naive, family):
        graph = generators.GRAPH_FAMILIES[family](6, None)
        full = graph.all_vertices
        for left, right in naive.partitions(graph, full):
            assert left | right == full
            assert left & right == 0
            assert graph.is_connected(left)
            assert graph.is_connected(right)
            assert graph.are_connected(left, right)

    def test_max_index_always_in_complement(self, naive):
        graph = generators.cycle_graph(6)
        for left, right in naive.partitions(graph, graph.all_vertices):
            assert bitset.highest_index(left) < bitset.highest_index(right)

    def test_works_on_subsets(self, naive):
        graph = generators.chain_graph(6)
        subset = bitset.from_iterable({1, 2, 3})
        pairs = list(naive.partitions(graph, subset))
        assert len(pairs) == 2
        for left, right in pairs:
            assert left | right == subset
