"""Tests for the partitioning registry."""

import pytest

from repro.errors import UnknownAlgorithmError
from repro.partitioning import (
    PARTITIONINGS,
    available_partitionings,
    get_partitioning,
)
from repro.partitioning.base import PartitioningStrategy


class TestRegistry:
    def test_all_five_strategies_registered(self):
        assert available_partitionings() == [
            "mincut_agat",
            "mincut_branch",
            "mincut_conservative",
            "mincut_lazy",
            "naive",
        ]

    def test_lookup_returns_singleton(self):
        assert get_partitioning("naive") is get_partitioning("naive")

    def test_unknown_name_raises(self):
        with pytest.raises(UnknownAlgorithmError):
            get_partitioning("mincut_quantum")

    def test_every_strategy_has_label_and_name(self):
        for name, strategy in PARTITIONINGS.items():
            assert isinstance(strategy, PartitioningStrategy)
            assert strategy.name == name
            assert strategy.label

    def test_paper_labels(self):
        assert get_partitioning("mincut_lazy").label == "TDMcL"
        assert get_partitioning("mincut_branch").label == "TDMcB"
        assert get_partitioning("mincut_conservative").label == "TDMcC"
