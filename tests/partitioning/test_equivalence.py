"""The central partitioning property: every strategy equals the oracle.

Each MinCut* strategy must emit exactly ``P_ccp_sym(S)``: every connected
subgraph / connected complement pair, one orientation per symmetric pair,
no duplicates.  Naive partitioning is the oracle.  Closed-form counts from
Ono & Lohman / Moerkotte & Neumann pin down the canonical shapes.
"""

import pytest
from hypothesis import given, strategies as st

from repro.graph import bitset, generators
from repro.partitioning import PARTITIONINGS
from tests.conftest import connected_graphs

EFFICIENT = ("mincut_lazy", "mincut_branch", "mincut_conservative")


def canonical(pairs):
    out = sorted((min(a, b), max(a, b)) for a, b in pairs)
    assert len(out) == len(set(out)), "duplicate ccp emitted"
    return out


@pytest.mark.parametrize("name", EFFICIENT)
class TestEquivalenceWithOracle:
    @given(graph=connected_graphs(min_vertices=2, max_vertices=8))
    def test_full_set_matches_naive(self, name, graph):
        expected = canonical(
            PARTITIONINGS["naive"].partitions(graph, graph.all_vertices)
        )
        got = canonical(PARTITIONINGS[name].partitions(graph, graph.all_vertices))
        assert got == expected

    @given(
        graph=connected_graphs(min_vertices=3, max_vertices=7),
        raw=st.integers(1, 2**7 - 1),
    )
    def test_connected_subsets_match_naive(self, name, graph, raw):
        subset = raw & graph.all_vertices
        if bitset.bit_count(subset) < 2 or not graph.is_connected(subset):
            return
        expected = canonical(PARTITIONINGS["naive"].partitions(graph, subset))
        got = canonical(PARTITIONINGS[name].partitions(graph, subset))
        assert got == expected

    @given(graph=connected_graphs(min_vertices=2, max_vertices=8))
    def test_emitted_pairs_are_valid_ccps(self, name, graph):
        full = graph.all_vertices
        for left, right in PARTITIONINGS[name].partitions(graph, full):
            assert left | right == full
            assert left & right == 0
            assert graph.is_connected(left)
            assert graph.is_connected(right)


def _total_ccps(strategy, graph):
    total = 0
    for subset in range(1, 1 << graph.n_vertices):
        if bitset.bit_count(subset) >= 2 and graph.is_connected(subset):
            total += sum(1 for _ in strategy.partitions(graph, subset))
    return total


@pytest.mark.parametrize("name", EFFICIENT + ("naive",))
class TestClosedFormCounts:
    """|P_ccp_sym| formulas from Ono & Lohman / Moerkotte & Neumann."""

    @pytest.mark.parametrize("n", [2, 4, 6, 8])
    def test_chain(self, name, n):
        graph = generators.chain_graph(n)
        assert _total_ccps(PARTITIONINGS[name], graph) == (n**3 - n) // 6

    @pytest.mark.parametrize("n", [2, 4, 6, 8])
    def test_star(self, name, n):
        graph = generators.star_graph(n)
        assert _total_ccps(PARTITIONINGS[name], graph) == (n - 1) * 2 ** (n - 2)

    @pytest.mark.parametrize("n", [3, 5, 7])
    def test_cycle(self, name, n):
        graph = generators.cycle_graph(n)
        assert _total_ccps(PARTITIONINGS[name], graph) == (n**3 - 2 * n**2 + n) // 2

    @pytest.mark.parametrize("n", [2, 4, 6])
    def test_clique(self, name, n):
        graph = generators.clique_graph(n)
        expected = (3**n - 2 ** (n + 1) + 1) // 2
        assert _total_ccps(PARTITIONINGS[name], graph) == expected


class TestEnumerationOrdersDiffer:
    """The robustness experiments need genuinely different orders."""

    def test_orders_differ_on_a_cycle(self):
        graph = generators.cycle_graph(6)
        sequences = {
            name: list(PARTITIONINGS[name].partitions(graph, graph.all_vertices))
            for name in EFFICIENT
        }
        assert sequences["mincut_lazy"] != sequences["mincut_conservative"]
        assert sequences["mincut_branch"] != sequences["mincut_conservative"]

    def test_lazy_is_breadth_first(self):
        graph = generators.chain_graph(5)
        sizes = [
            bitset.bit_count(min(left, right))
            for left, right in PARTITIONINGS["mincut_lazy"].partitions(
                graph, graph.all_vertices
            )
        ]
        # Breadth-first state expansion: the smaller-side sizes never
        # decrease by more than the frontier allows; first emission is a
        # singleton C.
        first_left = next(
            iter(PARTITIONINGS["mincut_lazy"].partitions(graph, graph.all_vertices))
        )[0]
        assert bitset.bit_count(first_left) == 1
        assert sizes[0] == min(sizes)
