"""Tests for the advanced generate-and-test partitioner ([5])."""

import pytest
from hypothesis import given, strategies as st

from repro.graph import bitset, generators
from repro.partitioning import PARTITIONINGS
from repro.partitioning.mincut_agat import MinCutAGaT
from tests.conftest import connected_graphs


def canonical(pairs):
    out = sorted((min(a, b), max(a, b)) for a, b in pairs)
    assert len(out) == len(set(out)), "duplicate ccp emitted"
    return out


class TestEquivalence:
    @given(graph=connected_graphs(min_vertices=2, max_vertices=8))
    def test_matches_oracle_on_full_set(self, graph):
        expected = canonical(
            PARTITIONINGS["naive"].partitions(graph, graph.all_vertices)
        )
        got = canonical(
            MinCutAGaT().partitions(graph, graph.all_vertices)
        )
        assert got == expected

    @given(
        graph=connected_graphs(min_vertices=3, max_vertices=7),
        raw=st.integers(1, 2**7 - 1),
    )
    def test_matches_oracle_on_subsets(self, graph, raw):
        subset = raw & graph.all_vertices
        if bitset.bit_count(subset) < 2 or not graph.is_connected(subset):
            return
        expected = canonical(PARTITIONINGS["naive"].partitions(graph, subset))
        assert canonical(MinCutAGaT().partitions(graph, subset)) == expected


class TestGenerateAndTestCharacter:
    def test_visits_exponentially_many_candidates_on_stars(self):
        """The §III-C motivation for the conservative jump: AGaT's
        recursion visits every connected C containing t — on a star,
        ~2^(n-2) candidates for only n-1 emissions."""
        graph = generators.star_graph(10)
        agat = MinCutAGaT()
        visits = [0]
        original_grow = agat._grow

        def counting_grow(g, s, c, x):
            visits[0] += 1
            return original_grow(g, s, c, x)

        agat._grow = counting_grow
        emitted = sum(1 for _ in agat.partitions(graph, graph.all_vertices))
        assert emitted == 9  # the n-1 valid ccps
        # t is a leaf: {t}, then every {t, hub} u (subset of other leaves).
        assert visits[0] >= 2 ** (10 - 2)

    def test_different_order_from_conservative(self):
        # On stars the conservative jump reorders emissions (deepest split
        # first) while AGaT discovers them in plain DFS order.  (On cycles
        # the two coincide: complements of arcs are always connected.)
        graph = generators.star_graph(5)
        agat_order = list(MinCutAGaT().partitions(graph, graph.all_vertices))
        conservative_order = list(
            PARTITIONINGS["mincut_conservative"].partitions(
                graph, graph.all_vertices
            )
        )
        assert agat_order != conservative_order

    def test_works_as_optimizer_enumerator(self, small_query):
        from repro.core.optimizer import optimize, run_dpccp

        baseline = run_dpccp(small_query)
        result = optimize(small_query, enumerator="mincut_agat", pruning="apcbi")
        assert result.cost == pytest.approx(baseline.cost)
        assert result.label == "TDMcA_APCBI"
