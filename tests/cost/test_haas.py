"""Tests for the Haas et al. I/O cost model."""

import pytest
from hypothesis import given, strategies as st

from repro.cost.haas import HaasCostModel
from repro.cost.statistics import IntermediateStats


def _stats(pages: float, vertex_set: int = 1, width: int = 100) -> IntermediateStats:
    return IntermediateStats(
        vertex_set=vertex_set,
        cardinality=pages * 80,
        tuple_width=width,
        pages=pages,
    )


@pytest.fixture
def model():
    return HaasCostModel(buffer_pages=64)


page_counts = st.floats(min_value=1.0, max_value=1e6, allow_nan=False)


class TestConstruction:
    def test_tiny_buffer_rejected(self):
        with pytest.raises(ValueError):
            HaasCostModel(buffer_pages=2)

    def test_buffer_exposed(self, model):
        assert model.buffer_pages == 64

    def test_repr(self, model):
        assert "64" in repr(model)


class TestBlockedNestedLoop:
    def test_single_chunk(self, model):
        # Outer fits in one chunk: outer + inner.
        assert model.blocked_nested_loop(10, 100) == 110

    def test_multiple_chunks(self, model):
        # 124 outer pages over chunks of 62 -> 2 inner scans.
        assert model.blocked_nested_loop(124, 100) == 124 + 2 * 100

    @given(page_counts, page_counts)
    def test_smaller_outer_never_much_worse(self, left, right):
        """The chunk ceiling can flip near-equal inputs by one inner scan,
        so the commute rule holds only up to that rounding for BNL."""
        model = HaasCostModel(buffer_pages=64)
        small, big = sorted((left, right))
        assert model.blocked_nested_loop(small, big) <= model.blocked_nested_loop(
            big, small
        ) * (1 + 1e-3) + big


class TestSortMerge:
    def test_in_memory_inputs_cost_one_read_each(self, model):
        assert model.sort_merge(10, 20) == 30

    def test_external_sort_costs_more(self, model):
        assert model.sort_merge(1000, 20) > 1000 + 20

    @given(page_counts, page_counts)
    def test_symmetric(self, left, right):
        model = HaasCostModel(buffer_pages=64)
        assert model.sort_merge(left, right) == model.sort_merge(right, left)


class TestHybridHash:
    def test_in_memory_build(self, model):
        assert model.hybrid_hash(10, 1000) == 1010

    def test_spilling_build_costs_more(self, model):
        assert model.hybrid_hash(1000, 1000) > 2000

    def test_grace_limit(self, model):
        # As the build grows far beyond memory, cost approaches 3 (L + R).
        cost = model.hybrid_hash(100000, 100000)
        assert cost == pytest.approx(3 * 200000, rel=0.01)

    @given(page_counts, page_counts)
    def test_building_on_smaller_side_never_worse(self, left, right):
        model = HaasCostModel(buffer_pages=64)
        small, big = sorted((left, right))
        assert model.hybrid_hash(small, big) <= model.hybrid_hash(big, small) + 1e-6


class TestJoinCost:
    def test_picks_cheapest_algorithm(self, model):
        outer, inner = _stats(10), _stats(1000, vertex_set=2)
        cost = model.join_cost(outer, inner)
        assert cost == min(
            model.blocked_nested_loop(10, 1000),
            model.sort_merge(10, 1000),
            model.hybrid_hash(10, 1000),
        )

    @given(page_counts, page_counts)
    def test_commute_rule(self, left_pages, right_pages):
        """Appendix A: smaller outer (equal widths) never costs more.

        Exact up to the BNL chunk ceiling, which can flip near-equal
        inputs by a sliver; BUILDTREE prices both orders anyway, so only
        the approximate property matters.
        """
        model = HaasCostModel(buffer_pages=64)
        small, big = sorted((left_pages, right_pages))
        a = model.join_cost(_stats(small, 1), _stats(big, 2))
        b = model.join_cost(_stats(big, 1), _stats(small, 2))
        assert a <= b * (1 + 1e-3) + big

    @given(page_counts, page_counts)
    def test_min_join_cost_is_min_over_orders(self, left_pages, right_pages):
        model = HaasCostModel(buffer_pages=64)
        left, right = _stats(left_pages, 1), _stats(right_pages, 2)
        assert model.min_join_cost(left, right) == min(
            model.join_cost(left, right), model.join_cost(right, left)
        )


class TestLowerBound:
    @given(page_counts, page_counts)
    def test_admissible(self, left_pages, right_pages):
        """The LBE foundation: lower_bound never exceeds any real cost."""
        model = HaasCostModel(buffer_pages=64)
        left, right = _stats(left_pages, 1), _stats(right_pages, 2)
        bound = model.lower_bound(left, right)
        assert bound <= model.join_cost(left, right) + 1e-9
        assert bound <= model.join_cost(right, left) + 1e-9

    def test_equals_sum_of_input_pages(self, model):
        assert model.lower_bound(_stats(7, 1), _stats(9, 2)) == 16
