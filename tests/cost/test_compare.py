"""Tests for the epsilon-aware cost comparison helpers."""

from hypothesis import given, strategies as st

from repro.cost.compare import cost_is_zero, costs_close

costs = st.floats(
    min_value=0.0, max_value=1e15, allow_nan=False, allow_infinity=False
)


class TestCostsClose:
    def test_exact_equality(self):
        assert costs_close(123.0, 123.0)

    def test_last_ulp_noise_is_equal(self):
        # Classic float association: (a + b) + c != a + (b + c).
        left = (0.1 + 0.2) + 0.3
        right = 0.1 + (0.2 + 0.3)
        assert left != right
        assert costs_close(left, right)

    def test_real_differences_are_detected(self):
        assert not costs_close(100.0, 101.0)
        assert not costs_close(0.0, 1.0)

    def test_custom_relative_tolerance(self):
        assert costs_close(100.0, 101.0, rel=0.05)
        assert not costs_close(100.0, 110.0, rel=0.05)

    @given(costs)
    def test_reflexive(self, value):
        assert costs_close(value, value)

    @given(costs, costs)
    def test_symmetric(self, a, b):
        assert costs_close(a, b) == costs_close(b, a)


class TestCostIsZero:
    def test_zero(self):
        assert cost_is_zero(0.0)
        assert cost_is_zero(-0.0)

    def test_rounding_noise(self):
        assert cost_is_zero(1e-15)
        assert cost_is_zero(-1e-15)

    def test_real_costs_are_not_zero(self):
        assert not cost_is_zero(1.0)
        assert not cost_is_zero(1e-6)
