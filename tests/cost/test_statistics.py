"""Tests for intermediate-result statistics and cardinality estimation."""

import pytest
from hypothesis import given

from repro.catalog.catalog import Catalog
from repro.catalog.relation import RelationStats
from repro.cost.statistics import IntermediateStats, StatisticsProvider
from repro.graph import bitset
from repro.graph.query_graph import QueryGraph
from repro.query import Query
from tests.conftest import small_queries


@pytest.fixture
def triangle_query():
    graph = QueryGraph(3, [(0, 1), (1, 2), (0, 2)])
    catalog = Catalog(
        [
            RelationStats(cardinality=100, name="A"),
            RelationStats(cardinality=200, name="B"),
            RelationStats(cardinality=50, name="C"),
        ],
        {(0, 1): 0.01, (1, 2): 0.1, (0, 2): 0.5},
    )
    return Query(graph=graph, catalog=catalog)


class TestSingletons:
    def test_base_relation_stats(self, triangle_query):
        provider = StatisticsProvider(triangle_query)
        stats = provider.stats(0b001)
        assert stats.cardinality == 100
        assert stats.pages >= 1


class TestIndependenceModel:
    def test_pair_cardinality(self, triangle_query):
        provider = StatisticsProvider(triangle_query)
        assert provider.cardinality(0b011) == pytest.approx(100 * 200 * 0.01)

    def test_triple_applies_all_edges(self, triangle_query):
        provider = StatisticsProvider(triangle_query)
        expected = 100 * 200 * 50 * 0.01 * 0.1 * 0.5
        assert provider.cardinality(0b111) == pytest.approx(expected)

    def test_join_stats_equals_union_stats(self, triangle_query):
        provider = StatisticsProvider(triangle_query)
        assert provider.join_stats(0b001, 0b010) is provider.stats(0b011)

    def test_width_is_sum_of_member_widths(self, triangle_query):
        provider = StatisticsProvider(triangle_query)
        assert provider.stats(0b111).tuple_width == 300

    @given(small_queries())
    def test_cardinality_is_order_independent(self, query):
        """The plan-class cardinality is a function of the set alone."""
        provider = StatisticsProvider(query)
        full = query.graph.all_vertices
        direct = provider.cardinality(full)
        fresh = StatisticsProvider(query)
        # Touch subsets first in a different order, then the full set.
        for index in range(query.n_relations):
            fresh.cardinality(bitset.singleton(index))
        assert fresh.cardinality(full) == pytest.approx(direct)


class TestCaching:
    def test_stats_are_cached(self, triangle_query):
        provider = StatisticsProvider(triangle_query)
        assert provider.stats(0b011) is provider.stats(0b011)

    def test_cache_size_grows(self, triangle_query):
        provider = StatisticsProvider(triangle_query)
        before = provider.cache_size()
        provider.stats(0b011)
        assert provider.cache_size() == before + 1


class TestIntermediateStats:
    def test_negative_cardinality_rejected(self):
        with pytest.raises(ValueError):
            IntermediateStats(vertex_set=1, cardinality=-1, tuple_width=10, pages=1)

    def test_pages_have_floor_of_one(self, triangle_query):
        provider = StatisticsProvider(triangle_query)
        # Selectivities shrink the result below one tuple; pages stay >= 1.
        assert provider.stats(0b111).pages >= 1.0
