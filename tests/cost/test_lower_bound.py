"""Tests for LBE, including the advancement-1 improved estimator."""

import pytest
from hypothesis import given

from repro.cost.haas import HaasCostModel
from repro.cost.lower_bound import ImprovedLowerBoundEstimator, LowerBoundEstimator
from repro.cost.statistics import StatisticsProvider
from repro.baselines.dpccp import DPccp, enumerate_csg_cmp_pairs
from repro.plans.memo import MemoTable
from repro.core.bounds import BoundsTable
from tests.conftest import small_queries


class TestBaselineEstimator:
    def test_equals_cost_model_lower_bound(self, small_query):
        provider = StatisticsProvider(small_query)
        model = HaasCostModel()
        lbe = LowerBoundEstimator(provider, model)
        assert lbe.estimate(0b01, 0b10) == model.lower_bound(
            provider.stats(0b01), provider.stats(0b10)
        )

    @given(small_queries(max_n=6))
    def test_admissible_against_true_optima(self, query):
        """LBE(S1,S2) never exceeds the cheapest real tree through that ccp."""
        model = HaasCostModel()
        algorithm = DPccp(query, model)
        algorithm.run()
        provider = StatisticsProvider(query)
        lbe = LowerBoundEstimator(provider, model)
        for left, right in enumerate_csg_cmp_pairs(query.graph):
            best_left = algorithm.memo.best(left)
            best_right = algorithm.memo.best(right)
            true_cost = (
                best_left.cost
                + best_right.cost
                + model.min_join_cost(provider.stats(left), provider.stats(right))
            )
            assert lbe.estimate(left, right) <= true_cost + 1e-6


class TestImprovedEstimator:
    def _estimators(self, query):
        provider = StatisticsProvider(query)
        model = HaasCostModel()
        memo = MemoTable()
        bounds = BoundsTable()
        improved = ImprovedLowerBoundEstimator(provider, model, memo, bounds)
        return improved, memo, bounds, provider, model

    def test_without_knowledge_equals_baseline(self, small_query):
        improved, _, _, provider, model = self._estimators(small_query)
        baseline = LowerBoundEstimator(provider, model)
        assert improved.estimate(0b01, 0b10) == baseline.estimate(0b01, 0b10)

    def test_adds_proven_lower_bounds(self, small_query):
        improved, _, bounds, provider, model = self._estimators(small_query)
        base = improved.estimate(0b01, 0b10)
        bounds.raise_lower(0b01, 500.0)
        assert improved.estimate(0b01, 0b10) == pytest.approx(base + 500.0)

    def test_known_tree_cost_beats_lower_bound(self, small_query):
        improved, memo, bounds, provider, model = self._estimators(small_query)
        bounds.raise_lower(0b01, 500.0)
        from repro.plans.join_tree import LeafNode

        memo.register(LeafNode(0, provider.cardinality(0b01)))
        base = LowerBoundEstimator(provider, model).estimate(0b01, 0b10)
        # Registered leaf has cost 0, which replaces the 500 bound.
        assert improved.estimate(0b01, 0b10) == pytest.approx(base)
