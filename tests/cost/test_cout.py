"""Tests for the C_out cost model."""

import pytest

from repro.cost.cout import CoutCostModel
from repro.cost.statistics import StatisticsProvider


class TestBinding:
    def test_unbound_model_raises(self, small_query):
        model = CoutCostModel()
        provider = StatisticsProvider(small_query)
        with pytest.raises(RuntimeError):
            model.join_cost(provider.stats(0b01), provider.stats(0b10))

    def test_bind_returns_self(self, small_query):
        model = CoutCostModel()
        assert model.bind(StatisticsProvider(small_query)) is model


class TestSemantics:
    def test_cost_is_output_cardinality(self, small_query):
        provider = StatisticsProvider(small_query)
        model = CoutCostModel().bind(provider)
        left, right = provider.stats(0b01), provider.stats(0b10)
        assert model.join_cost(left, right) == provider.cardinality(0b11)

    def test_symmetric(self, small_query):
        provider = StatisticsProvider(small_query)
        model = CoutCostModel().bind(provider)
        left, right = provider.stats(0b01), provider.stats(0b10)
        assert model.join_cost(left, right) == model.join_cost(right, left)

    def test_lower_bound_is_exact(self, small_query):
        provider = StatisticsProvider(small_query)
        model = CoutCostModel().bind(provider)
        left, right = provider.stats(0b01), provider.stats(0b10)
        assert model.lower_bound(left, right) == model.join_cost(left, right)
