"""Tests for the C_out cost model."""

import pytest

from repro.context import OptimizationContext, statistics_for
from repro.cost.cout import CoutCostModel
from repro.workload.generator import QueryGenerator


class TestBinding:
    def test_unbound_model_raises(self, small_query):
        model = CoutCostModel()
        provider = statistics_for(small_query)
        with pytest.raises(RuntimeError):
            model.join_cost(provider.stats(0b01), provider.stats(0b10))

    def test_bind_returns_a_copy_and_leaves_receiver_unbound(self, small_query):
        model = CoutCostModel()
        bound = model.bind(statistics_for(small_query))
        assert bound is not model
        assert isinstance(bound, CoutCostModel)
        # The receiver stays unbound: binding must never mutate it.
        provider = statistics_for(small_query)
        with pytest.raises(RuntimeError):
            model.join_cost(provider.stats(0b01), provider.stats(0b10))

    def test_one_instance_across_two_queries_does_not_alias(self):
        """Regression: a shared C_out instance must not keep the first
        query's statistics when a second generator/context binds it.

        Before bind returned a copy, the second bind mutated the shared
        instance in place — but an enumerator holding the model from the
        first bind silently priced joins with the *second* query's
        cardinalities (or vice versa, depending on call order).
        """
        generator = QueryGenerator(seed=99)
        query_a = generator.generate("chain", 5)
        query_b = generator.generate("star", 5)
        shared = CoutCostModel()
        context_a = OptimizationContext.for_query(query_a, cost_model=shared)
        context_b = OptimizationContext.for_query(query_b, cost_model=shared)
        stats_a = context_a.provider.stats(0b01), context_a.provider.stats(0b10)
        stats_b = context_b.provider.stats(0b01), context_b.provider.stats(0b10)
        # Each context's bound model prices with its own query's statistics.
        assert context_a.cost_model.join_cost(
            *stats_a
        ) == context_a.provider.cardinality(0b11)
        assert context_b.cost_model.join_cost(
            *stats_b
        ) == context_b.provider.cardinality(0b11)
        # Which are genuinely different numbers for these two queries.
        assert context_a.provider.cardinality(
            0b11
        ) != context_b.provider.cardinality(0b11)
        # And binding never touched the shared parameter instance.
        with pytest.raises(RuntimeError):
            shared.join_cost(*stats_a)


class TestSemantics:
    def test_cost_is_output_cardinality(self, small_query):
        provider = statistics_for(small_query)
        model = CoutCostModel().bind(provider)
        left, right = provider.stats(0b01), provider.stats(0b10)
        assert model.join_cost(left, right) == provider.cardinality(0b11)

    def test_symmetric(self, small_query):
        provider = statistics_for(small_query)
        model = CoutCostModel().bind(provider)
        left, right = provider.stats(0b01), provider.stats(0b10)
        assert model.join_cost(left, right) == model.join_cost(right, left)

    def test_lower_bound_is_exact(self, small_query):
        provider = statistics_for(small_query)
        model = CoutCostModel().bind(provider)
        left, right = provider.stats(0b01), provider.stats(0b10)
        assert model.lower_bound(left, right) == model.join_cost(left, right)
