"""Tests for the statistics catalog."""

import pytest

from repro.catalog.catalog import Catalog
from repro.catalog.relation import RelationStats
from repro.errors import CatalogError
from repro.graph.query_graph import QueryGraph


def _relations(*cards):
    return [RelationStats(cardinality=c, name=f"R{i}") for i, c in enumerate(cards)]


@pytest.fixture
def catalog():
    return Catalog(_relations(10, 20, 30), {(0, 1): 0.1, (1, 2): 0.5})


class TestAccessors:
    def test_cardinality(self, catalog):
        assert catalog.cardinality(1) == 20

    def test_relation_lookup(self, catalog):
        assert catalog.relation(2).name == "R2"

    def test_missing_relation_raises(self, catalog):
        with pytest.raises(CatalogError):
            catalog.relation(3)

    def test_selectivity_orientation_free(self, catalog):
        assert catalog.selectivity(0, 1) == 0.1
        assert catalog.selectivity(1, 0) == 0.1

    def test_missing_selectivity_raises(self, catalog):
        with pytest.raises(CatalogError):
            catalog.selectivity(0, 2)

    def test_has_selectivity(self, catalog):
        assert catalog.has_selectivity(2, 1)
        assert not catalog.has_selectivity(0, 2)

    def test_selectivities_returns_copy(self, catalog):
        copy = catalog.selectivities
        copy[(0, 2)] = 0.9
        assert not catalog.has_selectivity(0, 2)


class TestValidation:
    def test_selectivity_out_of_range_rejected(self):
        with pytest.raises(CatalogError):
            Catalog(_relations(10, 20), {(0, 1): 0.0})
        with pytest.raises(CatalogError):
            Catalog(_relations(10, 20), {(0, 1): 1.5})

    def test_validate_against_matching_graph(self, catalog):
        catalog.validate_against(QueryGraph(3, [(0, 1), (1, 2)]))

    def test_validate_against_wrong_size(self, catalog):
        with pytest.raises(CatalogError):
            catalog.validate_against(QueryGraph(2, [(0, 1)]))

    def test_validate_against_missing_edge(self, catalog):
        with pytest.raises(CatalogError):
            catalog.validate_against(QueryGraph(3, [(0, 1), (0, 2)]))


class TestRelabel:
    def test_relabel_moves_stats_and_edges(self, catalog):
        relabeled = catalog.relabel([2, 0, 1])  # old0->2, old1->0, old2->1
        assert relabeled.cardinality(2) == 10
        assert relabeled.cardinality(0) == 20
        assert relabeled.selectivity(2, 0) == 0.1  # old (0,1)
        assert relabeled.selectivity(0, 1) == 0.5  # old (1,2)

    def test_relabel_identity(self, catalog):
        relabeled = catalog.relabel([0, 1, 2])
        assert relabeled.selectivities == catalog.selectivities
