"""Tests for per-relation statistics."""

import pytest

from repro.catalog.relation import DEFAULT_PAGE_SIZE, RelationStats
from repro.errors import CatalogError


class TestValidation:
    def test_valid_relation(self):
        stats = RelationStats(cardinality=1000, domain_sizes=(10, 50))
        assert stats.cardinality == 1000
        assert stats.domain_sizes == (10, 50)

    def test_zero_cardinality_rejected(self):
        with pytest.raises(CatalogError):
            RelationStats(cardinality=0)

    def test_zero_tuple_width_rejected(self):
        with pytest.raises(CatalogError):
            RelationStats(cardinality=10, tuple_width=0)

    def test_zero_domain_rejected(self):
        with pytest.raises(CatalogError):
            RelationStats(cardinality=10, domain_sizes=(0,))


class TestPages:
    def test_small_relation_occupies_one_page(self):
        assert RelationStats(cardinality=1, tuple_width=100).pages() == 1.0

    def test_pages_scale_with_cardinality(self):
        tuples_per_page = DEFAULT_PAGE_SIZE // 100
        stats = RelationStats(cardinality=10 * tuples_per_page, tuple_width=100)
        assert stats.pages() == 10.0

    def test_pages_respect_custom_page_size(self):
        stats = RelationStats(cardinality=100, tuple_width=100)
        assert stats.pages(page_size=100) == 100.0

    def test_wide_tuples_one_per_page(self):
        stats = RelationStats(cardinality=7, tuple_width=DEFAULT_PAGE_SIZE * 2)
        assert stats.pages() == 7.0

    def test_name_defaults_empty(self):
        assert RelationStats(cardinality=5).name == ""
