"""TieredPlanCache: warm hits, admission, breaker fail-open, telemetry."""

import os

import pytest

from repro.context import (
    AdmissionPolicy,
    DurableStore,
    TieredPlanCache,
)
from repro.context.store import _StoreBreaker
from repro.core.optimizer import Optimizer
from repro.errors import StoreEpochError
from repro.resilience.faults import STORE_FAULT_KINDS, StoreFaultInjector
from repro.telemetry import MetricRegistry, Telemetry
from repro.workload.generator import QueryGenerator


@pytest.fixture
def query():
    return QueryGenerator(seed=5).generate("chain", 6)


@pytest.fixture
def queries():
    generator = QueryGenerator(seed=6)
    return [
        generator.generate(family, n)
        for family, n in (("chain", 5), ("star", 5), ("cycle", 6))
    ]


class TestTieredLifecycle:
    def test_cold_put_persists_and_same_process_hits_l1(self, tmp_path, query):
        cache = TieredPlanCache.open(str(tmp_path / "seg.rpl"))
        optimizer = Optimizer(plan_cache=cache)
        cold = optimizer.optimize(query)
        warm = optimizer.optimize(query)
        assert warm.plan.sexpr() == cold.plan.sexpr()
        assert warm.cost.hex() == cold.cost.hex()
        assert cache.store.appended == 1
        assert cache.l2_hits == 0  # same process: L1 answered
        cache.close()

    def test_restart_warms_from_the_segment(self, tmp_path, query):
        path = str(tmp_path / "seg.rpl")
        first = TieredPlanCache.open(path)
        cold = Optimizer(plan_cache=first).optimize(query)
        first.close()

        # "Restart": a brand-new cache over the same file.
        second = TieredPlanCache.open(path)
        assert len(second) == 0  # L1 empty — nothing in process memory
        warm = Optimizer(plan_cache=second).optimize(query)
        assert second.l2_hits == 1
        assert warm.memo_entries == 0  # enumeration skipped entirely
        assert warm.plan.sexpr() == cold.plan.sexpr()
        assert warm.cost.hex() == cold.cost.hex()
        # The hit was promoted to L1: next lookup never touches L2.
        again = Optimizer(plan_cache=second).optimize(query)
        assert second.l2_hits == 1
        assert again.plan.sexpr() == cold.plan.sexpr()
        second.close()

    def test_warm_start_from_shared_snapshot(self, tmp_path, queries):
        snapshot_path = str(tmp_path / "snapshot.rpl")
        writer = TieredPlanCache.open(snapshot_path)
        for query in queries:
            Optimizer(plan_cache=writer).optimize(query)
        writer.close()

        shard = TieredPlanCache.open(
            str(tmp_path / "shard-0.rpl"),
            snapshot_paths=(snapshot_path, str(tmp_path / "missing.rpl")),
        )
        for query in queries:
            result = Optimizer(plan_cache=shard).optimize(query)
            assert result.memo_entries == 0
        assert shard.l2_hits == len(queries)
        assert shard.store.appended == 0  # snapshot hits are not re-persisted
        shard.close()

    def test_admission_policy_keeps_cheap_entries_l1_only(
        self, tmp_path, query
    ):
        cache = TieredPlanCache.open(
            str(tmp_path / "seg.rpl"),
            admission=AdmissionPolicy(min_expansions=10**9),
        )
        optimizer = Optimizer(plan_cache=cache)
        optimizer.optimize(query)
        assert cache.store.appended == 0
        assert cache.admission_skips == 1
        # Still a perfectly good L1 entry.
        warm = optimizer.optimize(query)
        assert warm.memo_entries == 0
        cache.close()

    def test_snapshot_exposes_the_l2_section(self, tmp_path, query):
        cache = TieredPlanCache.open(str(tmp_path / "seg.rpl"))
        Optimizer(plan_cache=cache).optimize(query)
        snapshot = cache.snapshot()
        l2 = snapshot["l2"]
        assert l2["warm_entries"] == 1
        assert l2["breaker"]["state"] == "closed"
        assert l2["store"]["appended"] == 1
        assert l2["store"]["recovery"]["created"] is True
        cache.close()

    def test_open_on_an_unwritable_path_fails_open(self, tmp_path, query):
        target = tmp_path / "not-a-dir" / "seg.rpl"
        cache = TieredPlanCache.open(str(target))  # parent doesn't exist
        assert cache.store is None
        assert cache.store_errors >= 1
        result = Optimizer(plan_cache=cache).optimize(query)
        warm = Optimizer(plan_cache=cache).optimize(query)
        assert warm.plan.sexpr() == result.plan.sexpr()
        cache.close()


class TestFailOpen:
    """Injected store faults may cost durability, never plan choice."""

    @pytest.mark.parametrize("kind", STORE_FAULT_KINDS)
    def test_armed_fault_is_bit_identical_to_disarmed(
        self, tmp_path, queries, kind
    ):
        disarmed_plans = []
        cache = TieredPlanCache.open(
            str(tmp_path / f"disarmed-{kind}.rpl"),
            fault_injector=StoreFaultInjector(seed=3, rate=1.0, kind=kind),
        )
        for query in queries:
            result = Optimizer(plan_cache=cache).optimize(query)
            disarmed_plans.append((result.plan.sexpr(), result.cost.hex()))
        assert cache.store_errors == 0  # disarmed wrapper is a no-op
        cache.close()

        injector = StoreFaultInjector(seed=3, rate=1.0, kind=kind)
        cache = TieredPlanCache.open(
            str(tmp_path / f"armed-{kind}.rpl"), fault_injector=injector
        )
        with injector:
            armed_plans = []
            for query in queries:
                result = Optimizer(plan_cache=cache).optimize(query)
                armed_plans.append((result.plan.sexpr(), result.cost.hex()))
        assert armed_plans == disarmed_plans
        assert injector.total_injected >= 1
        if kind != "bitflip":  # bitflip appends "succeed" (corrupt on disk)
            assert cache.store_errors >= 1
        cache.close()

    def test_bitflip_lands_on_disk_and_is_quarantined_at_reopen(
        self, tmp_path, query
    ):
        path = str(tmp_path / "seg.rpl")
        injector = StoreFaultInjector(seed=11, rate=1.0, kind="bitflip")
        cache = TieredPlanCache.open(path, fault_injector=injector)
        with injector:
            Optimizer(plan_cache=cache).optimize(query)
        assert injector.total_injected == 1
        cache.close()

        reopened = DurableStore(path)
        assert reopened.report.quarantined_records == 1
        assert reopened.records == {}
        assert os.path.exists(path + ".quarantine")
        reopened.close()

    def test_breaker_opens_after_threshold_and_skips_appends(
        self, tmp_path, queries
    ):
        injector = StoreFaultInjector(seed=1, rate=1.0, kind="raise")
        cache = TieredPlanCache.open(
            str(tmp_path / "seg.rpl"),
            fault_injector=injector,
            breaker_failure_threshold=1,
            breaker_cooldown_seconds=3600.0,
        )
        with injector:
            for query in queries:
                Optimizer(plan_cache=cache).optimize(query)
        # First put fails (store poisoned + breaker opens); the rest are
        # skipped without touching the store at all.
        assert cache.store_errors == 1
        assert cache.fail_open_skips == len(queries) - 1
        assert cache.breaker_state == "open"
        assert cache.store.poisoned
        cache.close()

    def test_breaker_recloses_after_cooldown_and_success(self, tmp_path, query):
        clock = [0.0]
        breaker = _StoreBreaker(
            failure_threshold=1,
            cooldown_seconds=10.0,
            clock=lambda: clock[0],
        )
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow()
        clock[0] = 11.0
        assert breaker.allow()  # half-open probe
        breaker.record_success()
        assert breaker.state == "closed"

    def test_store_fault_counters_reach_telemetry(self, tmp_path, query):
        telemetry = Telemetry(registry=MetricRegistry(enabled=True))
        injector = StoreFaultInjector(seed=2, rate=1.0, kind="raise")
        cache = TieredPlanCache.open(
            str(tmp_path / "seg.rpl"),
            fault_injector=injector,
            telemetry=telemetry,
        )
        with injector:
            Optimizer(plan_cache=cache).optimize(query)
        names = set(telemetry.registry.snapshot())
        assert "repro_cache_store_errors_total" in names
        assert "repro_cache_store_warm_entries_total" in names
        cache.close()

    def test_stale_epoch_fault_raises_injected_epoch_error(self, tmp_path):
        injector = StoreFaultInjector(seed=4, rate=1.0, kind="stale_epoch")
        store = DurableStore(
            str(tmp_path / "seg.rpl"), fault_injector=injector
        )
        from repro.context import CachedPlan, fingerprint
        from repro.core.optimizer import run_dpccp

        query = QueryGenerator(seed=5).generate("chain", 5)
        fp = fingerprint(query)
        entry = CachedPlan(
            run_dpccp(query).plan.relabel(fp.mapping), fp.payload
        )
        with injector:
            with pytest.raises(StoreEpochError):
                store.append(fp.key, entry)
        assert store.poisoned
        store.close()
