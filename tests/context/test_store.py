"""DurableStore framing, recovery, and the crash-corruption sweep."""

import json
import os
import struct
import zlib

import pytest

from repro.context import (
    CachedPlan,
    DurableStore,
    OptimizationContext,
    fingerprint,
    replay_plan,
)
from repro.context.store import (
    RECORD_FORMAT_VERSION,
    STORE_MAGIC,
    atomic_write_text,
    decode_entry,
    decode_plan,
    default_store_epoch,
    encode_entry,
    encode_plan,
)
from repro.context.storecli import compact_store_dir, inspect_store
from repro.core.optimizer import run_dpccp
from repro.errors import StoreCorruptionError, StoreError
from repro.workload.generator import QueryGenerator

_FRAME = struct.Struct("<II")


@pytest.fixture
def query():
    return QueryGenerator(seed=33).generate("star", 6)


def _entry_for(query, cold_seconds=0.25, expansions=99):
    plan = run_dpccp(query).plan
    fp = fingerprint(query)
    return fp.key, CachedPlan(
        plan.relabel(fp.mapping),
        fp.payload,
        cold_seconds=cold_seconds,
        expansions=expansions,
    )


def _frames(path):
    """Parse ``path`` with an independent reader; returns payload list."""
    data = open(path, "rb").read()
    assert data.startswith(STORE_MAGIC)
    offset = len(STORE_MAGIC)
    payloads = []
    while offset < len(data):
        length, crc = _FRAME.unpack_from(data, offset)
        start = offset + _FRAME.size
        payload = data[start : start + length]
        assert zlib.crc32(payload) & 0xFFFFFFFF == crc
        payloads.append(payload)
        offset = start + length
    return payloads


class TestEncoding:
    def test_plan_round_trip_is_bit_exact(self, query):
        plan = run_dpccp(query).plan
        again = decode_plan(encode_plan(plan))
        assert again.sexpr() == plan.sexpr()
        assert again.cost.hex() == plan.cost.hex()
        assert encode_plan(again) == encode_plan(plan)

    def test_entry_round_trip_preserves_provenance_and_ranked(self, query):
        ranked = run_dpccp(query, topk=3).ranked
        fp = fingerprint(query)
        canonical = tuple(p.relabel(fp.mapping) for p in ranked)
        entry = CachedPlan(
            canonical[0],
            fp.payload,
            canonical,
            cold_seconds=0.125,
            expansions=7,
        )
        key, back = decode_entry(encode_entry("k", entry))
        assert key == "k"
        assert back.payload == fp.payload
        assert back.cold_seconds == 0.125 and back.expansions == 7
        assert [p.sexpr() for p in back.canonical_ranked] == [
            p.sexpr() for p in canonical
        ]

    def test_decode_rejects_malformed_structures(self):
        for bad in (["X", 1, "0x1p+0", "R1"], [], {"key": 1}, None):
            with pytest.raises(StoreCorruptionError):
                decode_plan(bad)
        with pytest.raises(StoreCorruptionError):
            decode_entry({"key": 3, "payload": "p", "plan": ["L"]})

    def test_epoch_folds_in_schema_and_cost_model(self):
        epoch = default_store_epoch()
        assert f"record:v{RECORD_FORMAT_VERSION}" in epoch
        assert "cost:haas-v1" in epoch
        assert default_store_epoch("other-v2") != epoch


class TestStoreLifecycle:
    def test_fresh_store_has_header_and_created_report(self, tmp_path):
        store = DurableStore(str(tmp_path / "seg.rpl"))
        assert store.report.created
        assert store.records == {}
        header = json.loads(_frames(store.path)[0])
        assert header["epoch"] == store.epoch
        store.close()

    def test_append_then_reopen_replays_last_wins(self, tmp_path, query):
        path = str(tmp_path / "seg.rpl")
        key, entry = _entry_for(query)
        with DurableStore(path) as store:
            store.append(key, entry)
            store.append("other", entry)
            store.append(key, entry)  # duplicate key: last wins
            assert store.appended == 3
        again = DurableStore(path)
        assert again.report.entries_replayed == 3
        assert again.report.keys_recovered == 2
        assert sorted(again.records) == sorted([key, "other"])
        _, decoded = decode_entry(again.records[key])
        assert decoded.canonical_plan.sexpr() == entry.canonical_plan.sexpr()
        again.close()

    def test_replayed_entry_serves_an_isomorphic_query(self, tmp_path, query):
        path = str(tmp_path / "seg.rpl")
        key, entry = _entry_for(query)
        with DurableStore(path) as store:
            store.append(key, entry)
        again = DurableStore(path)
        _, decoded = decode_entry(again.records[key])
        context = OptimizationContext.for_query(query)
        replayed = replay_plan(
            decoded.canonical_plan, fingerprint(query).mapping, context
        )
        assert replayed.cost.hex() == run_dpccp(query).plan.cost.hex()
        again.close()

    def test_stale_epoch_sets_file_aside_and_starts_fresh(
        self, tmp_path, query
    ):
        path = str(tmp_path / "seg.rpl")
        key, entry = _entry_for(query)
        with DurableStore(path, epoch="epoch-A") as store:
            store.append(key, entry)
        reopened = DurableStore(path, epoch="epoch-B")
        assert reopened.report.stale_epoch
        assert reopened.records == {}
        # The old log is preserved verbatim for operators, never replayed.
        assert os.path.exists(path + ".stale")
        old = DurableStore(path + ".stale", epoch="epoch-A", writable=False)
        assert key in old.records
        reopened.close()

    def test_read_only_open_classifies_but_never_repairs(
        self, tmp_path, query
    ):
        path = str(tmp_path / "seg.rpl")
        key, entry = _entry_for(query)
        with DurableStore(path) as store:
            store.append(key, entry)
        size = os.path.getsize(path)
        with open(path, "ab") as handle:
            handle.write(b"\x01\x02\x03")  # torn tail
        snapshot = DurableStore(path, writable=False)
        assert snapshot.report.torn_tail
        assert snapshot.report.truncated_bytes == 3
        assert key in snapshot.records
        assert os.path.getsize(path) == size + 3  # untouched on disk
        with pytest.raises(StoreError):
            snapshot.append(key, entry)

    def test_failed_append_poisons_until_reopen(self, tmp_path, query):
        path = str(tmp_path / "seg.rpl")
        key, entry = _entry_for(query)
        store = DurableStore(path)
        store.append(key, entry)
        store._handle.close()  # simulate the disk yanking the handle
        with pytest.raises(StoreError):
            store.append("k2", entry)
        assert store.poisoned
        with pytest.raises(StoreError):  # refuses fast, no second write
            store.append("k3", entry)
        repaired = DurableStore(path)
        assert not repaired.poisoned
        assert key in repaired.records
        repaired.append("k2", entry)
        repaired.close()


class TestCrashSweep:
    """Property-style: truncate/corrupt the last record at *every* byte.

    Whatever single byte of the final record a crash tears or a disk
    flips, recovery must end in one of exactly two honest states — the
    record truncated away (torn tail) or quarantined (corruption) — and
    the surviving prefix must replay byte-identically.  No third outcome,
    no exceptions, ever.
    """

    @pytest.fixture
    def prepared(self, tmp_path, query):
        path = str(tmp_path / "seg.rpl")
        key, entry = _entry_for(query)
        with DurableStore(path) as store:
            store.append("first", entry)
            store.append("second", entry)
            store.append(key, entry)
        data = open(path, "rb").read()
        # Walk frames to find where the last record's bytes begin.
        offset = len(STORE_MAGIC)
        starts = []
        while offset < len(data):
            starts.append(offset)
            length, _ = _FRAME.unpack_from(data, offset)
            offset = offset + _FRAME.size + length
        last_start = starts[-1]  # skip header frame at starts[0]
        return path, data, last_start, {"first", "second"}

    def test_truncation_at_every_offset_recovers_the_prefix(
        self, prepared, tmp_path
    ):
        path, data, last_start, prefix_keys = prepared
        victim = str(tmp_path / "victim.rpl")
        for cut in range(last_start, len(data)):
            with open(victim, "wb") as handle:
                handle.write(data[:cut])
            store = DurableStore(victim, fsync=False)
            assert set(store.records) == prefix_keys, f"cut={cut}"
            if cut > last_start:
                assert store.report.torn_tail, f"cut={cut}"
                assert store.report.truncated_bytes == cut - last_start
            assert store.report.quarantined_records == 0, f"cut={cut}"
            # Repaired in place: a second open is clean and appendable.
            store.close()
            again = DurableStore(victim, fsync=False)
            assert set(again.records) == prefix_keys, f"cut={cut}"
            assert not again.report.torn_tail, f"cut={cut}"
            assert os.path.getsize(victim) == last_start, f"cut={cut}"
            again.close()

    def test_corruption_at_every_offset_quarantines_or_tears(
        self, prepared, tmp_path
    ):
        path, data, last_start, prefix_keys = prepared
        victim = str(tmp_path / "victim.rpl")
        quarantines = 0
        for index in range(last_start, len(data)):
            corrupted = bytearray(data)
            corrupted[index] ^= 0xFF
            with open(victim, "wb") as handle:
                handle.write(bytes(corrupted))
            sidecar = victim + ".quarantine"
            if os.path.exists(sidecar):
                os.unlink(sidecar)
            store = DurableStore(victim, fsync=False)
            # The two honest outcomes; never a third, never a crash.
            assert set(store.records) == prefix_keys, f"index={index}"
            torn = store.report.torn_tail or store.report.truncated_bytes
            quarantined = store.report.quarantined_records
            assert torn or quarantined, f"index={index}"
            if quarantined:
                quarantines += 1
                assert os.path.exists(sidecar), f"index={index}"
                evidence = [
                    json.loads(line)
                    for line in open(sidecar, encoding="utf-8")
                ]
                assert evidence[0]["offset"] == last_start
            store.close()
        # Flips inside the payload body must be caught by the CRC, so the
        # sweep has to quarantine many times, not just tear.
        assert quarantines > (len(data) - last_start) // 2


class TestCompactionCli:
    def test_compact_merges_segments_and_prunes(self, tmp_path, query):
        store_dir = str(tmp_path)
        key, entry = _entry_for(query)
        with DurableStore(os.path.join(store_dir, "shard-0.rpl")) as seg:
            seg.append("a", entry)
            seg.append(key, entry)
        with DurableStore(os.path.join(store_dir, "shard-1.rpl")) as seg:
            seg.append("b", entry)
        summary = compact_store_dir(store_dir, prune=True)
        assert summary["entries"] == 3
        assert len(summary["pruned_segments"]) == 2
        snapshot = DurableStore(
            os.path.join(store_dir, "snapshot.rpl"), writable=False
        )
        assert sorted(snapshot.records) == sorted(["a", "b", key])
        # Pruned segments are valid empty logs, ready for their shard.
        for name in ("shard-0.rpl", "shard-1.rpl"):
            seg = DurableStore(os.path.join(store_dir, name), writable=False)
            assert seg.records == {}

    def test_inspect_reports_recovery_and_keys(self, tmp_path, query):
        path = str(tmp_path / "seg.rpl")
        key, entry = _entry_for(query)
        with DurableStore(path) as store:
            store.append(key, entry)
        summary = inspect_store(path)
        assert summary["keys"] == [key]
        assert summary["undecodable"] == []
        assert summary["recovery"]["keys_recovered"] == 1


class TestAtomicWriteText:
    def test_writes_and_replaces_atomically(self, tmp_path):
        target = tmp_path / "out.json"
        atomic_write_text(str(target), "one")
        atomic_write_text(str(target), "two")
        assert target.read_text() == "two"
        assert list(tmp_path.iterdir()) == [target]  # no temp litter
