"""Fingerprint invariance and sensitivity tests (ISSUE satellite).

The cache key must be *invariant* under relation renumbering (isomorphic
queries share an entry) and *sensitive* to statistics changes beyond the
quantization step (materially different queries never collide).
"""

import random

import pytest

from repro.catalog.catalog import Catalog
from repro.context import QUANT_STEPS, canonical_mapping, fingerprint, quantize
from repro.graph.renumber import invert_mapping
from repro.query import Query
from repro.workload.generator import QueryGenerator


def _permutations_of(n, seed, count=6):
    rng = random.Random(seed)
    for _ in range(count):
        perm = list(range(n))
        rng.shuffle(perm)
        yield perm


def _with_selectivity_factor(query, factor):
    """The same query with every edge selectivity scaled by ``factor``."""
    catalog = query.catalog
    scaled = {
        edge: min(1.0, value * factor)
        for edge, value in catalog.selectivities.items()
    }
    relations = [catalog.relation(i) for i in range(catalog.n_relations)]
    return Query(
        graph=query.graph,
        catalog=Catalog(relations, scaled),
        family=query.family,
        seed=query.seed,
    )


class TestQuantize:
    def test_full_step_always_changes_the_bucket(self):
        # round(x + 1) == round(x) + 1, so scaling a value by one full
        # quantization step (2^(1/steps)) moves it to an adjacent bucket.
        for value in (0.5, 1.0, 3.7, 1e4, 123456.789):
            stepped = value * 2 ** (1.0 / QUANT_STEPS)
            assert quantize(stepped) == quantize(value) + 1

    def test_tiny_perturbations_share_a_bucket(self):
        assert quantize(1000.0) == quantize(1000.0 * 1.01)

    def test_degenerate_values_share_the_sentinel(self):
        assert quantize(0.0) == quantize(-5.0)
        assert quantize(0.0) < quantize(1e-300)


class TestRenumberingInvariance:
    @pytest.mark.parametrize("family", ["chain", "star", "cycle"])
    @pytest.mark.parametrize("scheme", ["fk", "random"])
    def test_permuted_numbering_gives_identical_fingerprints(
        self, family, scheme
    ):
        query = QueryGenerator(seed=2012).generate(family, 7, scheme)
        base = fingerprint(query)
        for perm in _permutations_of(query.n_relations, seed=17):
            permuted = query.relabel(perm)
            other = fingerprint(permuted)
            assert other.key == base.key, (
                f"{family}/{scheme} permuted by {perm} changed the key"
            )
            assert other.payload == base.payload

    def test_mapping_relabels_to_the_canonical_form(self):
        query = QueryGenerator(seed=7).generate("cycle", 6)
        mapping = canonical_mapping(query)
        canonical = query.relabel(mapping)
        # The canonical form fingerprints to itself with the identity.
        again = fingerprint(canonical)
        assert again.key == fingerprint(query).key
        assert list(again.mapping) == list(range(query.n_relations))

    def test_mapping_is_invertible(self):
        query = QueryGenerator(seed=3).generate("clique", 5)
        mapping = list(fingerprint(query).mapping)
        inverse = invert_mapping(mapping)
        assert sorted(mapping) == list(range(query.n_relations))
        assert [mapping[inverse[i]] for i in range(len(mapping))] == list(
            range(len(mapping))
        )


class TestStatisticsSensitivity:
    def test_perturbation_beyond_one_step_changes_the_key(self):
        query = QueryGenerator(seed=41).generate("chain", 6)
        # A full quantization step is guaranteed to move every edge bucket.
        factor = 2 ** (1.0 / QUANT_STEPS)
        perturbed = _with_selectivity_factor(query, 1.0 / factor)
        assert fingerprint(perturbed).key != fingerprint(query).key

    def test_perturbation_within_a_bucket_keeps_the_key(self):
        query = QueryGenerator(seed=41).generate("chain", 6)
        nudged = _with_selectivity_factor(query, 1.001)
        assert fingerprint(nudged).key == fingerprint(query).key

    def test_different_shapes_never_collide(self):
        generator = QueryGenerator(seed=8)
        chain = generator.generate("chain", 6)
        star = generator.generate("star", 6)
        assert fingerprint(chain).key != fingerprint(star).key
