"""PlanCache mechanics and Optimizer integration."""

import pytest

from repro.context import (
    CachedPlan,
    OptimizationContext,
    PlanCache,
    fingerprint,
    replay_plan,
)
from repro.core.optimizer import Optimizer, run_dpccp
from repro.plans.validation import validate_plan
from repro.workload.generator import QueryGenerator


@pytest.fixture
def query():
    return QueryGenerator(seed=21).generate("cycle", 7)


def _cached_entry(query):
    context = OptimizationContext.for_query(query)
    plan = run_dpccp(query).plan
    fp = fingerprint(query)
    return CachedPlan(plan.relabel(fp.mapping), fp.payload), fp, context


class TestLruMechanics:
    def test_hits_misses_and_recency(self, query):
        cache = PlanCache(capacity=4)
        entry, fp, _ = _cached_entry(query)
        assert cache.get("a") is None
        cache.put("a", entry)
        found = cache.get("a")
        # Defensive copy: an equal entry, never the live cached object.
        assert found is not entry
        assert found.canonical_plan.sexpr() == entry.canonical_plan.sexpr()
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_eviction_is_least_recently_used(self, query):
        cache = PlanCache(capacity=2)
        entry, _, _ = _cached_entry(query)
        cache.put("a", entry)
        cache.put("b", entry)
        cache.get("a")  # refresh "a"; "b" becomes LRU
        cache.put("c", entry)
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.evictions == 1

    def test_zero_capacity_disables_storage(self, query):
        cache = PlanCache(capacity=0)
        entry, _, _ = _cached_entry(query)
        cache.put("a", entry)
        assert len(cache) == 0
        assert cache.get("a") is None

    def test_clear_preserves_counters(self, query):
        cache = PlanCache()
        entry, _, _ = _cached_entry(query)
        cache.put("a", entry)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1
        snapshot = cache.snapshot()
        assert snapshot["hits"] == 1 and snapshot["entries"] == 0


class TestReplay:
    def test_replay_reproduces_the_plan_bit_for_bit(self, query):
        entry, fp, context = _cached_entry(query)
        replayed = replay_plan(entry.canonical_plan, fp.mapping, context)
        original = run_dpccp(query).plan
        assert replayed.cost.hex() == original.cost.hex()
        assert replayed.sexpr() == original.sexpr()

    def test_replay_for_an_isomorphic_query_validates(self, query):
        entry, _, _ = _cached_entry(query)
        perm = [2, 5, 0, 6, 1, 4, 3]
        permuted = query.relabel(perm)
        context = OptimizationContext.for_query(permuted)
        replayed = replay_plan(
            entry.canonical_plan, fingerprint(permuted).mapping, context
        )
        validate_plan(replayed, permuted, context.cost_model)


class TestOptimizerIntegration:
    def test_repeated_query_hits_and_skips_enumeration(self, query):
        cache = PlanCache()
        optimizer = Optimizer(plan_cache=cache)
        cold = optimizer.optimize(query)
        warm = optimizer.optimize(query)
        assert cache.hits == 1 and cache.misses == 1
        assert warm.memo_entries == 0
        assert warm.stats.plan_cache_hits == 1
        assert cold.stats.plan_cache_misses == 1
        assert warm.cost.hex() == cold.cost.hex()
        assert warm.plan.sexpr() == cold.plan.sexpr()

    def test_isomorphic_query_hits_the_same_entry(self, query):
        cache = PlanCache()
        optimizer = Optimizer(plan_cache=cache)
        optimizer.optimize(query)
        permuted = query.relabel([3, 0, 5, 1, 6, 2, 4])
        result = optimizer.optimize(permuted)
        assert cache.hits == 1
        validate_plan(result.plan, permuted)

    def test_different_configurations_do_not_share_entries(self, query):
        cache = PlanCache()
        apcbi = Optimizer(pruning="apcbi", plan_cache=cache)
        pcb = Optimizer(pruning="pcb", plan_cache=cache)
        apcbi.optimize(query)
        pcb.optimize(query)
        assert cache.hits == 0 and cache.misses == 2
        assert len(cache) == 2

    def test_cacheless_optimizer_is_unchanged(self, query):
        bare = Optimizer().optimize(query)
        assert bare.stats.plan_cache_hits == 0
        assert bare.stats.plan_cache_misses == 0


class TestRankedEntries:
    def test_cached_plan_stores_the_canonical_ranked_tuple(self, query):
        context = OptimizationContext.for_query(query)
        ranked = run_dpccp(query, topk=3).ranked
        fp = fingerprint(query)
        canonical = tuple(plan.relabel(fp.mapping) for plan in ranked)
        entry = CachedPlan(canonical[0], fp.payload, canonical)
        assert entry.canonical_ranked == canonical
        assert isinstance(entry.canonical_ranked, tuple)
        for plan in entry.canonical_ranked:
            replayed = replay_plan(plan, fp.mapping, context)
            validate_plan(replayed, query)

    def test_canonical_ranked_defaults_empty(self, query):
        entry, _, _ = _cached_entry(query)
        assert entry.canonical_ranked == ()

    def test_topk_hit_and_miss_counters_match_single_best(self, query):
        # One miss then one hit — the ranked payload rides along without
        # perturbing the cache's observable accounting.
        cache = PlanCache()
        optimizer = Optimizer(plan_cache=cache, topk=3)
        cold = optimizer.optimize_topk(query, k=3)
        warm = optimizer.optimize_topk(query, k=3)
        assert cache.hits == 1 and cache.misses == 1
        assert cold.stats.plan_cache_misses == 1
        assert warm.stats.plan_cache_hits == 1
        assert [p.cost.hex() for p in warm.ranked] == [
            p.cost.hex() for p in cold.ranked
        ]


class TestDefensiveCopies:
    """Regression: ``get`` must never hand out the live cached object.

    A caller that mutated the returned ``CachedPlan`` (or the trees
    hanging off it) used to poison the shared L1 entry for every later
    hit; ``get`` now returns a deep clone."""

    def test_get_returns_a_clone_not_the_cached_object(self, query):
        cache = PlanCache()
        entry, _, _ = _cached_entry(query)
        cache.put("a", entry)
        first = cache.get("a")
        second = cache.get("a")
        assert first is not entry and second is not entry
        assert first is not second
        assert first.canonical_plan is not entry.canonical_plan
        assert (
            first.canonical_plan.sexpr() == entry.canonical_plan.sexpr()
        )

    def test_mutating_a_returned_entry_cannot_poison_the_cache(self, query):
        cache = PlanCache()
        entry, fp, context = _cached_entry(query)
        original_sexpr = entry.canonical_plan.sexpr()
        cache.put("a", entry)
        stolen = cache.get("a")
        # Hostile caller: rewrite the returned tree in place.
        node = stolen.canonical_plan
        while hasattr(node, "left"):
            node = node.left
        node.cardinality = -1.0
        node.name = "poisoned"
        clean = cache.get("a")
        assert clean.canonical_plan.sexpr() == original_sexpr
        replayed = replay_plan(clean.canonical_plan, fp.mapping, context)
        validate_plan(replayed, query)

    def test_clone_preserves_ranked_plans_and_provenance(self, query):
        ranked = run_dpccp(query, topk=3).ranked
        fp = fingerprint(query)
        canonical = tuple(plan.relabel(fp.mapping) for plan in ranked)
        entry = CachedPlan(
            canonical[0],
            fp.payload,
            canonical,
            cold_seconds=1.5,
            expansions=42,
        )
        clone = entry.clone()
        assert clone.cold_seconds == 1.5 and clone.expansions == 42
        assert len(clone.canonical_ranked) == len(canonical)
        for ours, theirs in zip(clone.canonical_ranked, canonical):
            assert ours is not theirs
            assert ours.sexpr() == theirs.sexpr()


class TestThreadSafety:
    """The cache is shared by service workers; its LRU + counters must
    survive concurrent hammering without losing structural integrity."""

    def test_concurrent_gets_and_puts_stay_consistent(self, query):
        import threading

        entry, _, _ = _cached_entry(query)
        cache = PlanCache(capacity=8)
        errors = []
        barrier = threading.Barrier(4)

        def worker(worker_id):
            barrier.wait()
            try:
                for i in range(200):
                    key = f"w{worker_id}-k{i % 12}"
                    cache.put(key, entry)
                    found = cache.get(key)
                    assert found is None or (
                        found is not entry
                        and found.payload == entry.payload
                    )
                    if i % 50 == 0:
                        cache.snapshot()
                        len(cache)
            except Exception as error:
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(n,)) for n in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        # Bounded, and the books balance: every lookup was a hit or a miss.
        assert len(cache) <= 8
        assert cache.hits + cache.misses == 4 * 200
        snapshot = cache.snapshot()
        assert snapshot["entries"] == len(cache)

    def test_concurrent_optimizers_share_one_cache(self, query):
        import threading

        cache = PlanCache(capacity=8)
        results = [None] * 3

        def optimize(slot):
            optimizer = Optimizer(plan_cache=cache)
            results[slot] = optimizer.optimize(query)

        threads = [
            threading.Thread(target=optimize, args=(n,)) for n in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        sexprs = {result.plan.sexpr() for result in results}
        assert len(sexprs) == 1  # all three agree bit for bit
        digests = {result.cost.hex() for result in results}
        assert len(digests) == 1
        assert cache.misses >= 1
