"""OptimizationContext construction, sharing and derivation semantics."""

import pytest

from repro.context import OptimizationContext, statistics_for
from repro.cost.cout import CoutCostModel
from repro.cost.haas import HaasCostModel
from repro.graph import bitset
from repro.resilience.budget import Budget
from repro.stats.counters import OptimizationStats
from repro.workload.generator import QueryGenerator


@pytest.fixture
def query():
    return QueryGenerator(seed=13).generate("cycle", 6)


class TestForQuery:
    def test_default_model_is_haas(self, query):
        context = OptimizationContext.for_query(query)
        assert isinstance(context.cost_model, HaasCostModel)

    def test_accepts_instance_factory_or_none(self, query):
        by_instance = OptimizationContext.for_query(query, HaasCostModel())
        by_factory = OptimizationContext.for_query(query, HaasCostModel)
        assert isinstance(by_instance.cost_model, HaasCostModel)
        assert isinstance(by_factory.cost_model, HaasCostModel)

    def test_binds_provider_dependent_models(self, query):
        context = OptimizationContext.for_query(query, CoutCostModel)
        left = context.provider.stats(0b01)
        right = context.provider.stats(0b10)
        assert context.cost_model.join_cost(left, right) == (
            context.provider.cardinality(0b11)
        )

    def test_builder_shares_the_context_stats(self, query):
        stats = OptimizationStats()
        context = OptimizationContext.for_query(query, stats=stats)
        assert context.stats is stats
        assert context.builder.stats is stats

    def test_budget_is_carried(self, query):
        budget = Budget(max_expansions=10)
        context = OptimizationContext.for_query(query, budget=budget)
        assert context.budget is budget


class TestDerivedContexts:
    def test_relabeled_shares_stats_and_budget_not_provider(self, query):
        budget = Budget(max_expansions=10)
        context = OptimizationContext.for_query(query, budget=budget)
        mapping = list(reversed(range(query.n_relations)))
        relabeled = context.relabeled(mapping)
        assert relabeled.stats is context.stats
        assert relabeled.budget is context.budget
        assert relabeled.provider is not context.provider
        assert relabeled.query.n_relations == query.n_relations

    def test_relabeled_statistics_are_consistent(self, query):
        context = OptimizationContext.for_query(query)
        mapping = list(reversed(range(query.n_relations)))
        relabeled = context.relabeled(mapping)
        for index in range(query.n_relations):
            assert relabeled.provider.cardinality(
                bitset.singleton(mapping[index])
            ) == context.provider.cardinality(bitset.singleton(index))

    def test_fork_shares_provider_and_model_fresh_stats(self, query):
        context = OptimizationContext.for_query(query)
        fork = context.fork()
        assert fork.provider is context.provider
        assert fork.cost_model is context.cost_model
        assert fork.stats is not context.stats
        assert fork.budget is context.budget

    def test_fork_memoization_is_shared(self, query):
        context = OptimizationContext.for_query(query)
        before = context.provider.cache_size()
        fork = context.fork()
        fork.provider.stats(0b111)
        assert context.provider.cache_size() > before


class TestStatisticsFor:
    def test_blessed_constructor_matches_direct_statistics(self, query):
        provider = statistics_for(query)
        assert provider.cardinality(0b1) == query.catalog.cardinality(0)
        assert provider.page_size > 0
