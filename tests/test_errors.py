"""Tests for the exception hierarchy contract."""

import pytest

from repro.errors import (
    CatalogError,
    DisconnectedGraphError,
    GraphError,
    OptimizationError,
    ReproError,
    UnknownAlgorithmError,
)
from repro.plans.validation import PlanValidationError


class TestHierarchy:
    @pytest.mark.parametrize(
        "error_cls",
        [
            GraphError,
            DisconnectedGraphError,
            CatalogError,
            OptimizationError,
            UnknownAlgorithmError,
            PlanValidationError,
        ],
    )
    def test_all_derive_from_repro_error(self, error_cls):
        assert issubclass(error_cls, ReproError)

    def test_disconnected_is_a_graph_error(self):
        assert issubclass(DisconnectedGraphError, GraphError)

    def test_unknown_algorithm_is_also_a_key_error(self):
        """Registry lookups behave like mapping lookups for callers."""
        assert issubclass(UnknownAlgorithmError, KeyError)

    def test_catching_repro_error_covers_library_failures(self):
        from repro.partitioning import get_partitioning

        with pytest.raises(ReproError):
            get_partitioning("does-not-exist")
