"""Whole-program passes: guarded-by inference and determinism taint.

Each positive case here is one the per-file rules structurally cannot
catch: the evidence (a lock acquisition, a nondeterminism source) and the
violation (an unguarded read, a tainted cache store) live in different
methods — and in the cross-module cases, different files.
"""

import textwrap

from repro.analysis.registry import all_passes

EXPECTED_PASSES = {"determinism", "guarded-by"}


def _src(code):
    return textwrap.dedent(code).lstrip()


COUNTER = _src(
    """
    import threading


    class Counter:
        def __init__(self):
            self._lock = threading.Lock()
            self.count = 0

        def bump(self):
            with self._lock:
                self.count += 1

        def reset(self):
            with self._lock:
                self.count = 0

        def peek(self):
            return self.count
    """
)


class TestPassCatalogue:
    def test_the_expected_passes_are_registered(self):
        assert {p.id for p in all_passes()} == EXPECTED_PASSES


class TestGuardedByInference:
    def test_unguarded_read_is_flagged(self, lint_program):
        diagnostics = lint_program({"counter.py": COUNTER}, "guarded-by")
        assert len(diagnostics) == 1
        diagnostic = diagnostics[0]
        assert diagnostic.rule == "guarded-by"
        assert "'count'" in diagnostic.message
        assert "self._lock" in diagnostic.message
        assert diagnostic.line == COUNTER.splitlines().index("        return self.count") + 1

    def test_fully_guarded_class_is_clean(self, lint_program):
        code = COUNTER.replace(
            "    def peek(self):\n        return self.count",
            "    def peek(self):\n        with self._lock:\n            return self.count",
        )
        assert lint_program({"counter.py": code}, "guarded-by") == []

    def test_init_writes_are_exempt(self, lint_program):
        # `config` is only ever written in __init__ and read elsewhere:
        # construction happens-before publication, so nothing is inferred.
        code = _src(
            """
            import threading


            class Holder:
                def __init__(self, config):
                    self._lock = threading.Lock()
                    self.config = config

                def describe(self):
                    return str(self.config)
            """
        )
        assert lint_program({"holder.py": code}, "guarded-by") == []

    def test_single_guarded_access_is_below_threshold(self, lint_program):
        code = _src(
            """
            import threading


            class Once:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.value = 0

                def set(self, value):
                    with self._lock:
                        self.value = value

                def get(self):
                    return self.value
            """
        )
        assert lint_program({"once.py": code}, "guarded-by") == []

    def test_unguarded_ok_pragma_suppresses(self, lint_program):
        code = COUNTER.replace(
            "        return self.count",
            "        return self.count  # repro: unguarded-ok",
        )
        assert lint_program({"counter.py": code}, "guarded-by") == []

    def test_disable_pragma_suppresses(self, lint_program):
        code = COUNTER.replace(
            "        return self.count",
            "        return self.count  # repro: disable=guarded-by",
        )
        assert lint_program({"counter.py": code}, "guarded-by") == []


class TestGuardedByHelpers:
    def test_helper_called_under_lock_is_clean(self, lint_program):
        code = _src(
            """
            import threading


            class Pool:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.jobs = []

                def submit(self, job):
                    with self._lock:
                        self._enqueue(job)

                def drain(self):
                    with self._lock:
                        self.jobs.clear()

                def _enqueue(self, job):
                    self.jobs.append(job)
            """
        )
        assert lint_program({"pool.py": code}, "guarded-by") == []

    def test_helper_called_without_lock_is_flagged(self, lint_program):
        code = _src(
            """
            import threading


            class Pool:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.jobs = []

                def submit(self, job):
                    with self._lock:
                        self.jobs.append(job)

                def drain(self):
                    with self._lock:
                        self.jobs.clear()

                def sneak(self, job):
                    self._enqueue(job)

                def _enqueue(self, job):
                    self.jobs.append(job)
            """
        )
        diagnostics = lint_program({"pool.py": code}, "guarded-by")
        assert len(diagnostics) == 1
        assert "'jobs'" in diagnostics[0].message
        # The flag lands on the helper's access, reached via the call graph.
        assert diagnostics[0].line == code.splitlines().index(
            "        self.jobs.append(job)", 15
        ) + 1


class TestGuardedByCrossModule:
    BASE = _src(
        """
        import threading


        class Store:
            def __init__(self):
                self._lock = threading.Lock()
                self.entries = {}

            def put(self, key, value):
                with self._lock:
                    self.entries[key] = value

            def size(self):
                with self._lock:
                    return len(self.entries)
        """
    )

    def test_subclass_in_another_module_is_flagged(self, lint_program):
        sub = _src(
            """
            from base import Store


            class FastStore(Store):
                def peek_all(self):
                    return dict(self.entries)
            """
        )
        diagnostics = lint_program(
            {"base.py": self.BASE, "fast.py": sub}, "guarded-by"
        )
        assert len(diagnostics) == 1
        assert diagnostics[0].path.endswith("fast.py")
        assert "'entries'" in diagnostics[0].message

    def test_well_behaved_subclass_is_clean(self, lint_program):
        sub = _src(
            """
            from base import Store


            class SafeStore(Store):
                def peek_all(self):
                    with self._lock:
                        return dict(self.entries)
            """
        )
        assert (
            lint_program({"base.py": self.BASE, "safe.py": sub}, "guarded-by")
            == []
        )


class TestGuardedByDeclarations:
    def test_declared_guard_flags_even_one_unguarded_access(self, lint_program):
        # Inference needs two guarded accesses; a declaration does not.
        code = _src(
            """
            import threading


            class Flag:
                def __init__(self):
                    self._lock = threading.Lock()

                def raise_it(self):
                    self.state = "up"  # repro: guarded-by(_lock)
            """
        )
        diagnostics = lint_program({"flag.py": code}, "guarded-by")
        assert len(diagnostics) == 1
        assert "'state'" in diagnostics[0].message
        assert "declared" in diagnostics[0].message

    def test_declaration_naming_unknown_lock_is_flagged(self, lint_program):
        code = _src(
            """
            import threading


            class Flag:
                def __init__(self):
                    self._lock = threading.Lock()

                def raise_it(self):
                    with self._lock:
                        self.state = "up"  # repro: guarded-by(_mutex)
            """
        )
        diagnostics = lint_program({"flag.py": code}, "guarded-by")
        assert len(diagnostics) == 1
        assert "_mutex" in diagnostics[0].message
        assert "names no lock" in diagnostics[0].message

    def test_condition_aliases_its_wrapped_lock(self, lint_program):
        code = _src(
            """
            import threading


            class Queue:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._ready = threading.Condition(self._lock)
                    self.items = []

                def put(self, item):
                    with self._ready:
                        self.items.append(item)

                def drain(self):
                    with self._lock:
                        self.items.clear()
            """
        )
        # Holding the condition holds the wrapped lock: both methods agree.
        assert lint_program({"queue.py": code}, "guarded-by") == []


class TestDeterminismSources:
    def test_wall_clock_into_memo_is_flagged(self, lint_program):
        code = _src(
            """
            import time

            _memo = {}


            def remember(query):
                _memo[query] = time.time()
            """
        )
        diagnostics = lint_program({"remember.py": code}, "determinism")
        assert len(diagnostics) == 1
        assert "time.time" in diagnostics[0].message
        assert "_memo" in diagnostics[0].message

    def test_injectable_clock_is_clean(self, lint_program):
        code = _src(
            """
            import time

            _memo = {}


            class Timed:
                def __init__(self, clock=time.monotonic):
                    self._clock = clock

                def remember(self, query):
                    _memo[query] = self._clock()
            """
        )
        assert lint_program({"timed.py": code}, "determinism") == []

    def test_hash_into_key_is_flagged(self, lint_program):
        code = _src(
            """
            def lookup(table, query):
                key = hash(query)
                return table[key]
            """
        )
        diagnostics = lint_program({"lookup.py": code}, "determinism")
        assert len(diagnostics) == 1
        assert "hash()" in diagnostics[0].message

    def test_os_urandom_is_flagged_outright(self, lint_program):
        code = _src(
            """
            import os


            def token():
                return os.urandom(8)
            """
        )
        diagnostics = lint_program({"token.py": code}, "determinism")
        assert len(diagnostics) == 1
        assert "os.urandom" in diagnostics[0].message

    def test_set_iteration_is_flagged(self, lint_program):
        code = _src(
            """
            def spread(values):
                out = []
                for value in set(values):
                    out.append(value)
                return out
            """
        )
        diagnostics = lint_program({"spread.py": code}, "determinism")
        assert len(diagnostics) == 1
        assert "set" in diagnostics[0].message

    def test_sorted_set_iteration_is_clean(self, lint_program):
        code = _src(
            """
            def spread(values):
                out = []
                for value in sorted(set(values)):
                    out.append(value)
                return out
            """
        )
        assert lint_program({"spread.py": code}, "determinism") == []

    def test_seeding_rng_from_clock_is_flagged(self, lint_program):
        code = _src(
            """
            import random
            import time


            def make_rng():
                rng = random.Random(42)
                rng.seed(time.time_ns())
                return rng
            """
        )
        diagnostics = lint_program({"rng.py": code}, "determinism")
        assert len(diagnostics) == 1
        assert "seeded" in diagnostics[0].message

    def test_clock_compared_against_cost_is_flagged(self, lint_program):
        code = _src(
            """
            import time


            def racy_prune(plan):
                return time.perf_counter() > plan.cost
            """
        )
        diagnostics = lint_program({"prune.py": code}, "determinism")
        assert len(diagnostics) == 1
        assert "cost" in diagnostics[0].message

    def test_disable_pragma_suppresses(self, lint_program):
        code = _src(
            """
            import time

            _memo = {}


            def remember(query):
                _memo[query] = time.time()  # repro: disable=determinism
            """
        )
        assert lint_program({"remember.py": code}, "determinism") == []

    def test_elapsed_timing_stats_are_clean(self, lint_program):
        # Clock reads are only taint, not violations: timing how long
        # optimization took is fine as long as it stays out of plan state.
        code = _src(
            """
            import time


            def timed(fn):
                started = time.perf_counter()
                result = fn()
                elapsed = time.perf_counter() - started
                return result, elapsed
            """
        )
        assert lint_program({"stats.py": code}, "determinism") == []


class TestDeterminismCrossModule:
    def test_nondet_helper_in_other_module_taints_cache_key(self, lint_program):
        clock = _src(
            """
            import time


            def now():
                return time.time()
            """
        )
        cache = _src(
            """
            from clockmod import now

            _cache = {}


            def stash(value):
                _cache[now()] = value
            """
        )
        diagnostics = lint_program(
            {"clockmod.py": clock, "cachemod.py": cache}, "determinism"
        )
        assert [d for d in diagnostics if d.path.endswith("cachemod.py")]
        flagged = [d for d in diagnostics if d.path.endswith("cachemod.py")][0]
        assert "now()" in flagged.message
        assert "_cache" in flagged.message

    def test_deterministic_helper_is_clean(self, lint_program):
        helper = _src(
            """
            def canonical(value):
                return tuple(sorted(value))
            """
        )
        cache = _src(
            """
            from helper import canonical

            _cache = {}


            def stash(value):
                _cache[canonical(value)] = value
            """
        )
        assert (
            lint_program(
                {"helper.py": helper, "cachemod.py": cache}, "determinism"
            )
            == []
        )
