"""Fixture-driven positive + negative coverage for every lint rule."""

import textwrap

import pytest


def _rules_of(diagnostics):
    return [d.rule for d in diagnostics]


class TestBitsetDiscipline:
    @pytest.mark.parametrize(
        "snippet",
        [
            "def f(v):\n    return 1 << v\n",
            "def f(s):\n    return s & -s\n",
            "def f(s):\n    return s.bit_length() - 1\n",
            'def f(s):\n    return bin(s).count("1")\n',
            "def f(s):\n    return s.bit_count()\n",
        ],
    )
    def test_raw_tricks_flagged(self, lint, snippet):
        diagnostics = lint(snippet, "bitset-discipline")
        assert _rules_of(diagnostics) == ["bitset-discipline"]

    def test_clean_code_passes(self, lint):
        code = "from repro.graph import bitset\n\ndef f(v):\n    return bitset.singleton(v)\n"
        assert lint(code, "bitset-discipline") == []

    def test_module_bit_count_helper_passes(self, lint):
        # The module function takes the set as an argument — only the
        # zero-argument raw int *method* is the flagged spelling.
        code = (
            "from repro.graph import bitset\n\n"
            "def f(s):\n    return bitset.bit_count(s)\n"
        )
        assert lint(code, "bitset-discipline") == []

    def test_allowed_inside_bitset_module(self, lint):
        code = "def singleton(v):\n    return 1 << v\n"
        assert lint(code, "bitset-discipline", filename="repro/graph/bitset.py") == []


class TestContextDiscipline:
    @pytest.mark.parametrize(
        "snippet",
        [
            "from repro.cost.statistics import StatisticsProvider\n"
            "def f(query):\n    return StatisticsProvider(query)\n",
            "from repro.plans.builder import PlanBuilder\n"
            "def f(p, m):\n    return PlanBuilder(p, m)\n",
            "import repro.cost.statistics as stats\n"
            "def f(query):\n    return stats.StatisticsProvider(query)\n",
        ],
    )
    def test_direct_construction_flagged(self, lint, snippet):
        assert _rules_of(lint(snippet, "context-discipline")) == [
            "context-discipline"
        ]

    def test_blessed_paths_pass(self, lint):
        code = (
            "from repro.context import OptimizationContext, statistics_for\n"
            "def f(query):\n"
            "    return OptimizationContext.for_query(query), "
            "statistics_for(query)\n"
        )
        assert lint(code, "context-discipline") == []

    def test_allowed_inside_the_context_package(self, lint):
        code = (
            "from repro.cost.statistics import StatisticsProvider\n"
            "def statistics_for(query):\n    return StatisticsProvider(query)\n"
        )
        assert (
            lint(code, "context-discipline", filename="repro/context/context.py")
            == []
        )

    def test_allowed_in_tests(self, lint):
        code = (
            "from repro.cost.statistics import StatisticsProvider\n"
            "def test_f(query):\n    return StatisticsProvider(query)\n"
        )
        assert (
            lint(code, "context-discipline", filename="tests/test_stats.py")
            == []
        )

    @pytest.mark.parametrize(
        "snippet",
        [
            "from repro.plans.memo import MemoTable\n"
            "def f():\n    return MemoTable()\n",
            "import repro.plans.memo as memo\n"
            "def f(k):\n    return memo.MemoTable(k=k)\n",
        ],
    )
    def test_direct_memotable_construction_flagged(self, lint, snippet):
        # A hand-rolled MemoTable silently ignores context.topk; the hint
        # points at letting a plan generator build it.
        diagnostics = lint(snippet, "context-discipline")
        assert _rules_of(diagnostics) == ["context-discipline"]
        assert "k=context.topk" in diagnostics[0].message

    @pytest.mark.parametrize(
        "filename",
        [
            "repro/plans/memo.py",
            "repro/core/plangen.py",
            "repro/baselines/dpccp.py",
        ],
    )
    def test_memotable_allowed_in_generator_modules(self, lint, filename):
        code = (
            "from repro.plans.memo import MemoTable\n"
            "def f(k):\n    return MemoTable(k=k)\n"
        )
        assert lint(code, "context-discipline", filename=filename) == []


class TestSeededRng:
    def test_unseeded_random_flagged(self, lint):
        code = "import random\nrng = random.Random()\n"
        assert _rules_of(lint(code, "seeded-rng")) == ["seeded-rng"]

    def test_module_level_call_flagged(self, lint):
        code = "import random\nx = random.randrange(5)\n"
        assert _rules_of(lint(code, "seeded-rng")) == ["seeded-rng"]

    def test_from_import_flagged(self, lint):
        code = "from random import randrange\n"
        assert _rules_of(lint(code, "seeded-rng")) == ["seeded-rng"]

    def test_seeded_random_passes(self, lint):
        code = "import random\nrng = random.Random(42)\nx = rng.randrange(5)\n"
        assert lint(code, "seeded-rng") == []

    def test_importing_the_class_passes(self, lint):
        code = "from random import Random\nrng = Random(7)\n"
        assert lint(code, "seeded-rng") == []


class TestNoFloatCostEq:
    def test_cost_equality_flagged(self, lint):
        code = "def check(plan):\n    assert plan.cost == 0.0\n"
        assert _rules_of(lint(code, "no-float-cost-eq")) == ["no-float-cost-eq"]

    def test_cost_inequality_flagged(self, lint):
        code = "def check(a, b):\n    return a.cost != b.cost\n"
        assert _rules_of(lint(code, "no-float-cost-eq")) == ["no-float-cost-eq"]

    def test_pytest_approx_passes(self, lint):
        code = (
            "import pytest\n\n"
            "def check(result, baseline):\n"
            "    assert result.cost == pytest.approx(baseline.cost)\n"
        )
        assert lint(code, "no-float-cost-eq") == []

    def test_non_cost_equality_passes(self, lint):
        code = "def check(a, b):\n    return a.name == b.name\n"
        assert lint(code, "no-float-cost-eq") == []


class TestRegistryComplete:
    CONCRETE = textwrap.dedent(
        """
        from repro.partitioning.base import PartitioningStrategy

        class ScratchPartitioning(PartitioningStrategy):
            name = "scratch"

            def partitions(self, graph, vertex_set):
                return iter(())
        """
    )

    def test_unregistered_subclass_flagged(self, lint):
        diagnostics = lint(self.CONCRETE, "registry-complete")
        assert _rules_of(diagnostics) == ["registry-complete"]
        assert "ScratchPartitioning" in diagnostics[0].message

    def test_registered_subclass_passes(self, lint):
        registry = "PARTITIONINGS = {s.name: s for s in (ScratchPartitioning(),)}\n"
        diagnostics = lint(
            self.CONCRETE,
            "registry-complete",
            extra_files={"repro/partitioning/registry.py": registry},
        )
        assert diagnostics == []

    def test_abstract_subclass_passes(self, lint):
        code = textwrap.dedent(
            """
            from abc import abstractmethod
            from repro.partitioning.base import PartitioningStrategy

            class MidLayer(PartitioningStrategy):
                @abstractmethod
                def refine(self):
                    ...
            """
        )
        assert lint(code, "registry-complete") == []

    def test_test_files_exempt(self, lint):
        assert lint(self.CONCRETE, "registry-complete", filename="test_scratch.py") == []


class TestNoMutableDefault:
    @pytest.mark.parametrize(
        "snippet",
        [
            "def f(xs=[]):\n    return xs\n",
            "def f(xs={}):\n    return xs\n",
            "def f(xs=set()):\n    return xs\n",
            "def f(*, xs=list()):\n    return xs\n",
        ],
    )
    def test_mutable_default_flagged(self, lint, snippet):
        assert _rules_of(lint(snippet, "no-mutable-default")) == ["no-mutable-default"]

    def test_none_default_passes(self, lint):
        code = "def f(xs=None):\n    return xs or []\n"
        assert lint(code, "no-mutable-default") == []

    def test_immutable_default_passes(self, lint):
        code = "def f(xs=(), n=3):\n    return xs\n"
        assert lint(code, "no-mutable-default") == []


class TestNoBareExcept:
    def test_bare_except_flagged(self, lint):
        code = "try:\n    pass\nexcept:\n    pass\n"
        assert _rules_of(lint(code, "no-bare-except")) == ["no-bare-except"]

    def test_typed_except_passes(self, lint):
        code = "try:\n    pass\nexcept ValueError:\n    pass\n"
        assert lint(code, "no-bare-except") == []


class TestNoSilentFallback:
    def test_except_pass_flagged(self, lint):
        code = "try:\n    f()\nexcept ValueError:\n    pass\n"
        assert _rules_of(lint(code, "no-silent-fallback")) == ["no-silent-fallback"]

    def test_except_continue_flagged(self, lint):
        code = (
            "for x in items:\n"
            "    try:\n"
            "        f(x)\n"
            "    except ValueError:\n"
            "        continue\n"
        )
        assert _rules_of(lint(code, "no-silent-fallback")) == ["no-silent-fallback"]

    def test_mixed_pass_continue_flagged(self, lint):
        code = (
            "for x in items:\n"
            "    try:\n"
            "        f(x)\n"
            "    except ValueError:\n"
            "        pass\n"
            "        continue\n"
        )
        assert _rules_of(lint(code, "no-silent-fallback")) == ["no-silent-fallback"]

    def test_handler_that_records_passes(self, lint):
        code = (
            "for x in items:\n"
            "    try:\n"
            "        f(x)\n"
            "    except ValueError:\n"
            "        skipped += 1\n"
            "        continue\n"
        )
        assert lint(code, "no-silent-fallback") == []

    def test_handler_that_reraises_passes(self, lint):
        code = "try:\n    f()\nexcept ValueError as e:\n    raise RuntimeError(str(e))\n"
        assert lint(code, "no-silent-fallback") == []


class TestBenchClock:
    def test_time_time_in_bench_flagged(self, lint):
        code = "import time\nstarted = time.time()\n"
        diagnostics = lint(code, "bench-clock", filename="benchmarks/test_speed.py")
        assert _rules_of(diagnostics) == ["bench-clock"]

    def test_from_time_import_time_flagged(self, lint):
        code = "from time import time\n"
        diagnostics = lint(code, "bench-clock", filename="bench/harness.py")
        assert _rules_of(diagnostics) == ["bench-clock"]

    def test_perf_counter_passes(self, lint):
        code = "import time\nstarted = time.perf_counter()\n"
        assert lint(code, "bench-clock", filename="benchmarks/test_speed.py") == []

    def test_outside_bench_paths_exempt(self, lint):
        code = "import time\nstamp = time.time()\n"
        assert lint(code, "bench-clock", filename="repro/io.py") == []


class TestAllExports:
    def test_stale_entry_flagged(self, lint):
        code = '__all__ = ["ghost"]\n'
        diagnostics = lint(code, "all-exports")
        assert _rules_of(diagnostics) == ["all-exports"]
        assert "ghost" in diagnostics[0].message

    def test_unlisted_public_def_flagged(self, lint):
        code = '__all__ = ["f"]\n\ndef f():\n    pass\n\ndef g():\n    pass\n'
        diagnostics = lint(code, "all-exports")
        assert _rules_of(diagnostics) == ["all-exports"]
        assert "'g'" in diagnostics[0].message

    def test_consistent_module_passes(self, lint):
        code = (
            '__all__ = ["f", "Widget"]\n\n'
            "def f():\n    pass\n\n"
            "class Widget:\n    pass\n\n"
            "def _private():\n    pass\n"
        )
        assert lint(code, "all-exports") == []

    def test_module_without_all_exempt(self, lint):
        code = "def anything():\n    pass\n"
        assert lint(code, "all-exports") == []


class TestMetricDiscipline:
    def test_global_counter_flagged(self, lint):
        code = (
            "_REQUESTS = 0\n\n"
            "def handle():\n"
            "    global _REQUESTS\n"
            "    _REQUESTS += 1\n"
        )
        diagnostics = lint(code, "metric-discipline", filename="repro/svc.py")
        assert _rules_of(diagnostics) == ["metric-discipline"]
        assert "_REQUESTS" in diagnostics[0].message

    def test_direct_instrument_construction_flagged(self, lint):
        code = (
            "from repro.telemetry import Counter\n\n"
            "def make():\n"
            '    return Counter("repro_x_total", "help")\n'
        )
        diagnostics = lint(code, "metric-discipline", filename="repro/svc.py")
        assert _rules_of(diagnostics) == ["metric-discipline"]

    def test_bad_metric_name_flagged(self, lint):
        code = (
            "def publish(registry):\n"
            '    registry.gauge("queueDepth", "help").set(1)\n'
        )
        diagnostics = lint(code, "metric-discipline", filename="repro/svc.py")
        assert _rules_of(diagnostics) == ["metric-discipline"]
        assert "naming scheme" in diagnostics[0].message

    def test_counter_without_total_suffix_flagged(self, lint):
        code = (
            "def publish(registry):\n"
            '    registry.counter("repro_requests", "help").inc()\n'
        )
        diagnostics = lint(code, "metric-discipline", filename="repro/svc.py")
        assert _rules_of(diagnostics) == ["metric-discipline"]
        assert "_total" in diagnostics[0].message

    def test_registry_accessors_with_good_names_pass(self, lint):
        code = (
            "def publish(registry):\n"
            '    registry.counter("repro_requests_total", "help").inc()\n'
            '    registry.gauge("repro_queue_depth", "help").set(3)\n'
            '    registry.histogram("repro_wait_seconds", "help").observe(0.1)\n'
        )
        assert lint(code, "metric-discipline", filename="repro/svc.py") == []

    def test_telemetry_package_and_tests_exempt(self, lint):
        code = (
            "_COUNT = 0\n\n"
            "def bump():\n"
            "    global _COUNT\n"
            "    _COUNT += 1\n"
        )
        assert (
            lint(code, "metric-discipline",
                 filename="repro/telemetry/metrics.py") == []
        )
        assert (
            lint(code, "metric-discipline",
                 filename="tests/test_counting.py") == []
        )

    def test_non_counter_global_passes(self, lint):
        code = (
            '_MODE = "fast"\n\n'
            "def set_mode(mode):\n"
            "    global _MODE\n"
            "    _MODE = mode\n"
        )
        assert lint(code, "metric-discipline", filename="repro/svc.py") == []


class TestSyntaxError:
    def test_unparsable_file_reported(self, lint):
        diagnostics = lint("def broken(:\n", "no-bare-except")
        assert _rules_of(diagnostics) == ["syntax-error"]


class TestDurableWrite:
    def test_bare_write_open_flagged_in_library_code(self, lint):
        code = 'def f(path):\n    with open(path, "w") as h:\n        h.write("x")\n'
        diagnostics = lint(
            code, "durable-write", filename="src/repro/module.py"
        )
        assert _rules_of(diagnostics) == ["durable-write"]

    @pytest.mark.parametrize(
        "snippet",
        [
            'def f(p):\n    p.write_text("x")\n',
            "def f(p):\n    p.write_bytes(b'x')\n",
            'def f(p):\n    return p.open("a")\n',
            'def f(p):\n    return open(p, mode="r+b")\n',
        ],
    )
    def test_other_write_shapes_flagged(self, lint, snippet):
        diagnostics = lint(
            snippet, "durable-write", filename="src/repro/module.py"
        )
        assert _rules_of(diagnostics) == ["durable-write"]

    @pytest.mark.parametrize(
        "snippet",
        [
            'def f(p):\n    return open(p, "rb").read()\n',
            'def f(p):\n    return open(p).read()\n',
            'def f(p):\n    return p.open("rb")\n',
            # A constant first arg that is a filename, not a mode.
            'def f(z):\n    return z.open("a.gz")\n',
            "def f(p, m):\n    return open(p, m)\n",  # non-constant mode
        ],
    )
    def test_reads_and_non_modes_pass(self, lint, snippet):
        assert (
            lint(snippet, "durable-write", filename="src/repro/module.py")
            == []
        )

    def test_outside_src_repro_exempt(self, lint):
        code = 'def f(p):\n    p.write_text("x")\n'
        assert lint(code, "durable-write", filename="benchmarks/bench.py") == []
        assert (
            lint(code, "durable-write", filename="src/repro/tests/test_x.py")
            == []
        )

    def test_store_module_itself_exempt(self, lint):
        code = 'def f(p):\n    return open(p, "ab")\n'
        assert (
            lint(code, "durable-write", filename="src/repro/context/store.py")
            == []
        )

    def test_pragma_opts_a_line_out(self, lint):
        code = (
            "def f(p):\n"
            '    with open(p, "a") as h:  # repro: disable=durable-write\n'
            '        h.write("x")\n'
        )
        assert lint(code, "durable-write", filename="src/repro/module.py") == []
