"""Shared helpers for the static-analysis tests."""

from pathlib import Path

import pytest

from repro.analysis import run_analysis
from repro.analysis.registry import get_pass, get_rule

#: Repository root (the directory holding src/, benchmarks/, tests/).
REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture
def lint(tmp_path):
    """Write a snippet to a (relative) filename and lint it with one rule.

    Returns the list of diagnostics.  ``filename`` may contain directories,
    which lets tests place snippets on rule-relevant paths
    (``repro/graph/bitset.py``, ``benchmarks/...``).
    """

    def _lint(code, rule_id, filename="snippet.py", extra_files=None):
        for relpath, content in (extra_files or {}).items():
            target = tmp_path / relpath
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(content, encoding="utf-8")
        target = tmp_path / filename
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(code, encoding="utf-8")
        result = run_analysis([str(tmp_path)], [get_rule(rule_id)])
        return result.diagnostics

    return _lint


@pytest.fixture
def lint_program(tmp_path):
    """Write snippets and run one whole-program pass over all of them.

    ``files`` maps relative filenames (directories allowed) to source;
    snippets must not be named ``test_*.py`` — passes skip test files.
    Returns the list of diagnostics.
    """

    def _lint(files, pass_id):
        for relpath, content in files.items():
            target = tmp_path / relpath
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(content, encoding="utf-8")
        result = run_analysis(
            [str(tmp_path)], rules=[], passes=[get_pass(pass_id)]
        )
        return result.diagnostics

    return _lint
