"""Shared helpers for the static-analysis tests."""

from pathlib import Path

import pytest

from repro.analysis import run_analysis
from repro.analysis.registry import get_rule

#: Repository root (the directory holding src/, benchmarks/, tests/).
REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture
def lint(tmp_path):
    """Write a snippet to a (relative) filename and lint it with one rule.

    Returns the list of diagnostics.  ``filename`` may contain directories,
    which lets tests place snippets on rule-relevant paths
    (``repro/graph/bitset.py``, ``benchmarks/...``).
    """

    def _lint(code, rule_id, filename="snippet.py", extra_files=None):
        for relpath, content in (extra_files or {}).items():
            target = tmp_path / relpath
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(content, encoding="utf-8")
        target = tmp_path / filename
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(code, encoding="utf-8")
        result = run_analysis([str(tmp_path)], [get_rule(rule_id)])
        return result.diagnostics

    return _lint
