"""Meta-test: the repository itself must satisfy its own lint gate.

This is the executable version of the CI contract: ``python -m
repro.analysis src benchmarks`` exits 0 on the tree, and a deliberate
violation of any rule exits non-zero with a ``file:line`` diagnostic.
"""

import os
import re
import subprocess
import sys

from tests.analysis.conftest import REPO_ROOT


def _run_linter(*args, cwd=None):
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        cwd=cwd or REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
    )


class TestRepositoryIsClean:
    def test_src_and_benchmarks_lint_clean(self):
        result = _run_linter("src", "benchmarks")
        assert result.returncode == 0, result.stdout + result.stderr
        assert "no problems found" in result.stdout

    def test_default_targets_match_explicit_ones(self):
        assert _run_linter().returncode == 0

    def test_whole_program_passes_are_clean_over_src(self):
        result = _run_linter(
            "--passes", "guarded-by,determinism", "src", "benchmarks"
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "no problems found" in result.stdout


class TestDeliberateViolation:
    def test_violation_fails_with_location_diagnostic(self, tmp_path):
        scratch = tmp_path / "scratch.py"
        scratch.write_text(
            "import random\nrng = random.Random()\n", encoding="utf-8"
        )
        result = _run_linter(str(scratch))
        assert result.returncode == 1
        # `file:line:col: rule-id message` shape on stdout.
        assert re.search(r"scratch\.py:2:\d+: seeded-rng ", result.stdout)
