"""Pragma parsing and suppression behavior."""

from repro.analysis.pragmas import parse_pragmas


class TestParsing:
    def test_line_pragma(self):
        table = parse_pragmas(["x = 1 << v  # repro: disable=bitset-discipline"])
        assert table.is_suppressed("bitset-discipline", 1)
        assert not table.is_suppressed("bitset-discipline", 2)
        assert not table.is_suppressed("seeded-rng", 1)

    def test_multiple_rules(self):
        table = parse_pragmas(["bad()  # repro: disable=no-bare-except, seeded-rng"])
        assert table.is_suppressed("no-bare-except", 1)
        assert table.is_suppressed("seeded-rng", 1)

    def test_file_wide_pragma(self):
        table = parse_pragmas(["# repro: disable-file=bench-clock", "x = 1"])
        assert table.is_suppressed("bench-clock", 999)
        assert not table.is_suppressed("seeded-rng", 1)

    def test_all_keyword(self):
        table = parse_pragmas(["x  # repro: disable=all"])
        assert table.is_suppressed("anything", 1)

    def test_trailing_prose_ignored(self):
        table = parse_pragmas(["s & -s  # repro: disable=bitset-discipline hot loop"])
        assert table.is_suppressed("bitset-discipline", 1)

    def test_unrelated_comments_ignored(self):
        table = parse_pragmas(["# repro: the paper's Fig. 2", "# plain comment"])
        assert not table

    def test_empty_source(self):
        assert not parse_pragmas([])


class TestConcurrencyPragmas:
    def test_guarded_by_declaration(self):
        table = parse_pragmas(["self.state = 0  # repro: guarded-by(_lock)"])
        assert table.guard_at(1) == "_lock"
        assert table.guard_at(2) is None
        assert table.guard_declarations() == {1: "_lock"}

    def test_guarded_by_allows_inner_whitespace(self):
        table = parse_pragmas(["x  # repro: guarded-by( _mu )"])
        assert table.guard_at(1) == "_mu"

    def test_unguarded_ok(self):
        table = parse_pragmas(["return self.hits  # repro: unguarded-ok"])
        assert table.is_unguarded_ok(1)
        assert not table.is_unguarded_ok(2)

    def test_unguarded_ok_with_trailing_prose(self):
        table = parse_pragmas(["x  # repro: unguarded-ok repr is best-effort"])
        assert table.is_unguarded_ok(1)

    def test_concurrency_pragmas_make_table_truthy(self):
        assert parse_pragmas(["x  # repro: unguarded-ok"])
        assert parse_pragmas(["x  # repro: guarded-by(_lock)"])


class TestSuppression:
    def test_pragma_suppresses_diagnostic(self, lint):
        code = "def f(v):\n    return 1 << v  # repro: disable=bitset-discipline\n"
        assert lint(code, "bitset-discipline") == []

    def test_pragma_for_other_rule_does_not_suppress(self, lint):
        code = "def f(v):\n    return 1 << v  # repro: disable=seeded-rng\n"
        diagnostics = lint(code, "bitset-discipline")
        assert [d.rule for d in diagnostics] == ["bitset-discipline"]

    def test_file_wide_pragma_suppresses_everywhere(self, lint):
        code = (
            "# repro: disable-file=bitset-discipline\n"
            "def f(v):\n"
            "    return 1 << v\n"
            "def g(s):\n"
            "    return s & -s\n"
        )
        assert lint(code, "bitset-discipline") == []
