"""CLI behavior: output formats, exit codes, rule and pass selection."""

import json
import shutil
import subprocess
import textwrap

import pytest

from repro.analysis.cli import EXIT_CLEAN, EXIT_USAGE, EXIT_VIOLATIONS, main
from repro.analysis.diagnostics import JSON_SCHEMA_VERSION
from repro.analysis.registry import all_rules
from repro.analysis.sarif import SARIF_SCHEMA_URI, SARIF_VERSION

EXPECTED_RULES = {
    "all-exports",
    "bench-clock",
    "bitset-discipline",
    "context-discipline",
    "durable-write",
    "metric-discipline",
    "no-bare-except",
    "no-float-cost-eq",
    "no-mutable-default",
    "no-silent-fallback",
    "registry-complete",
    "seeded-rng",
}


def _write(tmp_path, name, code):
    path = tmp_path / name
    path.write_text(code, encoding="utf-8")
    return path


class TestRuleCatalogue:
    def test_the_expected_rules_are_registered(self):
        assert {rule.id for rule in all_rules()} == EXPECTED_RULES

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == EXIT_CLEAN
        out = capsys.readouterr().out
        for rule_id in EXPECTED_RULES:
            assert rule_id in out


class TestExitCodes:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        path = _write(tmp_path, "clean.py", "x = 1\n")
        assert main([str(path)]) == EXIT_CLEAN
        assert "no problems found" in capsys.readouterr().out

    def test_violation_exits_one(self, tmp_path, capsys):
        path = _write(tmp_path, "bad.py", "try:\n    pass\nexcept:\n    pass\n")
        assert main([str(path)]) == EXIT_VIOLATIONS
        out = capsys.readouterr().out
        # `file:line:col: rule-id message` diagnostic shape.
        assert "bad.py:3:1: no-bare-except" in out

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope")]) == EXIT_USAGE
        assert "no such file" in capsys.readouterr().err

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        path = _write(tmp_path, "clean.py", "x = 1\n")
        assert main([str(path), "--select", "not-a-rule"]) == EXIT_USAGE
        assert "not-a-rule" in capsys.readouterr().err


class TestSelection:
    def test_select_restricts_rules(self, tmp_path):
        code = "import random\nrng = random.Random()\ndef f(xs=[]):\n    return xs\n"
        path = _write(tmp_path, "mixed.py", code)
        assert main([str(path), "--select", "no-mutable-default"]) == EXIT_VIOLATIONS

    def test_ignore_drops_rules(self, tmp_path):
        code = "def f(xs=[]):\n    return xs\n"
        path = _write(tmp_path, "mixed.py", code)
        assert main([str(path), "--ignore", "no-mutable-default"]) == EXIT_CLEAN


class TestJsonOutput:
    @pytest.fixture
    def payload(self, tmp_path, capsys):
        code = "def f(xs=[]):\n    return xs\n\ntry:\n    pass\nexcept:\n    pass\n"
        path = _write(tmp_path, "bad.py", code)
        exit_code = main([str(path), "--format", "json"])
        assert exit_code == EXIT_VIOLATIONS
        return json.loads(capsys.readouterr().out)

    def test_schema(self, payload):
        assert payload["version"] == JSON_SCHEMA_VERSION
        assert payload["files_checked"] == 1
        assert set(payload["counts"]) == {
            "no-mutable-default",
            "no-bare-except",
            "no-silent-fallback",
        }
        for diagnostic in payload["diagnostics"]:
            assert set(diagnostic) == {"path", "line", "col", "rule", "message"}
            assert diagnostic["line"] >= 1
            assert diagnostic["col"] >= 1

    def test_diagnostics_sorted_by_location(self, payload):
        locations = [(d["path"], d["line"], d["col"]) for d in payload["diagnostics"]]
        assert locations == sorted(locations)

    def test_counts_match_diagnostics(self, payload):
        assert sum(payload["counts"].values()) == len(payload["diagnostics"])


UNGUARDED = textwrap.dedent(
    """
    import threading


    class Counter:
        def __init__(self):
            self._lock = threading.Lock()
            self.count = 0

        def bump(self):
            with self._lock:
                self.count += 1

        def reset(self):
            with self._lock:
                self.count = 0

        def peek(self):
            return self.count
    """
).lstrip()


class TestPassSelection:
    def test_list_passes(self, capsys):
        assert main(["--list-passes"]) == EXIT_CLEAN
        out = capsys.readouterr().out
        for pass_id in ("guarded-by", "determinism"):
            assert pass_id in out

    def test_unknown_pass_exits_two(self, tmp_path, capsys):
        path = _write(tmp_path, "clean.py", "x = 1\n")
        assert main([str(path), "--passes", "not-a-pass"]) == EXIT_USAGE
        assert "not-a-pass" in capsys.readouterr().err

    def test_passes_off_by_default(self, tmp_path):
        path = _write(tmp_path, "counter.py", UNGUARDED)
        assert main([str(path)]) == EXIT_CLEAN

    def test_passes_flag_runs_whole_program_analysis(self, tmp_path, capsys):
        path = _write(tmp_path, "counter.py", UNGUARDED)
        assert main([str(path), "--passes", "guarded-by"]) == EXIT_VIOLATIONS
        assert "guarded-by" in capsys.readouterr().out

    def test_passes_all_keyword(self, tmp_path):
        path = _write(tmp_path, "counter.py", UNGUARDED)
        assert main([str(path), "--passes", "all"]) == EXIT_VIOLATIONS


class TestSarifOutput:
    @pytest.fixture
    def log(self, tmp_path, capsys):
        path = _write(tmp_path, "counter.py", UNGUARDED)
        exit_code = main(
            [str(path), "--passes", "guarded-by", "--format", "sarif"]
        )
        assert exit_code == EXIT_VIOLATIONS
        return json.loads(capsys.readouterr().out)

    def test_envelope(self, log):
        assert log["version"] == SARIF_VERSION
        assert log["$schema"] == SARIF_SCHEMA_URI
        assert len(log["runs"]) == 1
        assert log["runs"][0]["tool"]["driver"]["name"] == "repro-lint"

    def test_rule_catalogue_covers_rules_passes_and_syntax_error(self, log):
        ids = {rule["id"] for rule in log["runs"][0]["tool"]["driver"]["rules"]}
        expected = {rule.id for rule in all_rules()}
        expected.add("guarded-by")
        expected.add("syntax-error")
        assert ids == expected

    def test_results_reference_the_catalogue(self, log):
        run = log["runs"][0]
        catalogue = run["tool"]["driver"]["rules"]
        assert run["results"], "expected at least one result"
        for result in run["results"]:
            assert catalogue[result["ruleIndex"]]["id"] == result["ruleId"]
            location = result["locations"][0]["physicalLocation"]
            assert location["artifactLocation"]["uri"].endswith("counter.py")
            assert location["region"]["startLine"] >= 1
            assert location["region"]["startColumn"] >= 1
            assert result["level"] == "error"
            assert result["message"]["text"]

    def test_clean_run_has_empty_results(self, tmp_path, capsys):
        path = _write(tmp_path, "clean.py", "x = 1\n")
        assert main([str(path), "--format", "sarif"]) == EXIT_CLEAN
        log = json.loads(capsys.readouterr().out)
        assert log["runs"][0]["results"] == []


class TestChangedOnly:
    def _git(self, tmp_path, *args):
        return subprocess.run(
            [
                "git",
                "-c",
                "user.email=lint@example.invalid",
                "-c",
                "user.name=lint",
                *args,
            ],
            cwd=str(tmp_path),
            capture_output=True,
            text=True,
            check=True,
        )

    def test_lints_only_changed_files(self, tmp_path, monkeypatch, capsys):
        if shutil.which("git") is None:
            pytest.skip("git not installed")
        self._git(tmp_path, "init", "-q")
        # Both files violate no-bare-except; only one changes after the
        # baseline commit, so only that one may be reported.
        bad = "try:\n    pass\nexcept:\n    pass\n"
        _write(tmp_path, "old.py", bad)
        self._git(tmp_path, "add", ".")
        self._git(tmp_path, "commit", "-q", "-m", "seed")
        _write(tmp_path, "new.py", bad)
        monkeypatch.chdir(tmp_path)
        exit_code = main([".", "--changed-only", "--changed-ref", "HEAD"])
        out = capsys.readouterr().out
        assert exit_code == EXIT_VIOLATIONS
        assert "new.py" in out
        assert "old.py" not in out

    def test_no_changes_exits_clean(self, tmp_path, monkeypatch, capsys):
        if shutil.which("git") is None:
            pytest.skip("git not installed")
        self._git(tmp_path, "init", "-q")
        _write(tmp_path, "old.py", "try:\n    pass\nexcept:\n    pass\n")
        self._git(tmp_path, "add", ".")
        self._git(tmp_path, "commit", "-q", "-m", "seed")
        monkeypatch.chdir(tmp_path)
        assert main([".", "--changed-only", "--changed-ref", "HEAD"]) == EXIT_CLEAN
        assert "0 files checked" in capsys.readouterr().out

    def test_falls_back_to_full_run_without_git(
        self, tmp_path, monkeypatch, capsys
    ):
        _write(tmp_path, "bad.py", "try:\n    pass\nexcept:\n    pass\n")
        monkeypatch.chdir(tmp_path)
        exit_code = main([".", "--changed-only"])
        captured = capsys.readouterr()
        assert exit_code == EXIT_VIOLATIONS
        assert "linting everything" in captured.err
        assert "bad.py" in captured.out
