"""CLI behavior: output formats, exit codes, rule selection."""

import json

import pytest

from repro.analysis.cli import EXIT_CLEAN, EXIT_USAGE, EXIT_VIOLATIONS, main
from repro.analysis.diagnostics import JSON_SCHEMA_VERSION
from repro.analysis.registry import all_rules

EXPECTED_RULES = {
    "all-exports",
    "bench-clock",
    "bitset-discipline",
    "context-discipline",
    "metric-discipline",
    "no-bare-except",
    "no-float-cost-eq",
    "no-mutable-default",
    "no-silent-fallback",
    "registry-complete",
    "seeded-rng",
}


def _write(tmp_path, name, code):
    path = tmp_path / name
    path.write_text(code, encoding="utf-8")
    return path


class TestRuleCatalogue:
    def test_the_expected_rules_are_registered(self):
        assert {rule.id for rule in all_rules()} == EXPECTED_RULES

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == EXIT_CLEAN
        out = capsys.readouterr().out
        for rule_id in EXPECTED_RULES:
            assert rule_id in out


class TestExitCodes:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        path = _write(tmp_path, "clean.py", "x = 1\n")
        assert main([str(path)]) == EXIT_CLEAN
        assert "no problems found" in capsys.readouterr().out

    def test_violation_exits_one(self, tmp_path, capsys):
        path = _write(tmp_path, "bad.py", "try:\n    pass\nexcept:\n    pass\n")
        assert main([str(path)]) == EXIT_VIOLATIONS
        out = capsys.readouterr().out
        # `file:line:col: rule-id message` diagnostic shape.
        assert "bad.py:3:1: no-bare-except" in out

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope")]) == EXIT_USAGE
        assert "no such file" in capsys.readouterr().err

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        path = _write(tmp_path, "clean.py", "x = 1\n")
        assert main([str(path), "--select", "not-a-rule"]) == EXIT_USAGE
        assert "not-a-rule" in capsys.readouterr().err


class TestSelection:
    def test_select_restricts_rules(self, tmp_path):
        code = "import random\nrng = random.Random()\ndef f(xs=[]):\n    return xs\n"
        path = _write(tmp_path, "mixed.py", code)
        assert main([str(path), "--select", "no-mutable-default"]) == EXIT_VIOLATIONS

    def test_ignore_drops_rules(self, tmp_path):
        code = "def f(xs=[]):\n    return xs\n"
        path = _write(tmp_path, "mixed.py", code)
        assert main([str(path), "--ignore", "no-mutable-default"]) == EXIT_CLEAN


class TestJsonOutput:
    @pytest.fixture
    def payload(self, tmp_path, capsys):
        code = "def f(xs=[]):\n    return xs\n\ntry:\n    pass\nexcept:\n    pass\n"
        path = _write(tmp_path, "bad.py", code)
        exit_code = main([str(path), "--format", "json"])
        assert exit_code == EXIT_VIOLATIONS
        return json.loads(capsys.readouterr().out)

    def test_schema(self, payload):
        assert payload["version"] == JSON_SCHEMA_VERSION
        assert payload["files_checked"] == 1
        assert set(payload["counts"]) == {
            "no-mutable-default",
            "no-bare-except",
            "no-silent-fallback",
        }
        for diagnostic in payload["diagnostics"]:
            assert set(diagnostic) == {"path", "line", "col", "rule", "message"}
            assert diagnostic["line"] >= 1
            assert diagnostic["col"] >= 1

    def test_diagnostics_sorted_by_location(self, payload):
        locations = [(d["path"], d["line"], d["col"]) for d in payload["diagnostics"]]
        assert locations == sorted(locations)

    def test_counts_match_diagnostics(self, payload):
        assert sum(payload["counts"].values()) == len(payload["diagnostics"])
