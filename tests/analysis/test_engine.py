"""Engine internals: the parse cache and changed-file discovery."""

import shutil
import subprocess

import pytest

from repro.analysis import run_analysis
from repro.analysis.engine import clear_parse_cache, parse_cache_stats
from repro.analysis.gitchanged import changed_python_files
from repro.analysis.registry import get_rule

BAD = "try:\n    pass\nexcept:\n    pass\n"


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_parse_cache()
    yield
    clear_parse_cache()


class TestParseCache:
    def test_warm_run_hits_cache_and_reports_identical_diagnostics(
        self, tmp_path
    ):
        (tmp_path / "bad.py").write_text(BAD, encoding="utf-8")
        (tmp_path / "clean.py").write_text("x = 1\n", encoding="utf-8")
        rules = [get_rule("no-bare-except")]

        cold = run_analysis([str(tmp_path)], rules)
        stats = parse_cache_stats()
        assert stats["misses"] == 2
        assert stats["hits"] == 0

        warm = run_analysis([str(tmp_path)], rules)
        stats = parse_cache_stats()
        assert stats["misses"] == 2
        assert stats["hits"] == 2
        assert warm.diagnostics == cold.diagnostics
        assert warm.files_checked == cold.files_checked

    def test_modified_file_is_reparsed(self, tmp_path):
        target = tmp_path / "mutable.py"
        target.write_text("x = 1\n", encoding="utf-8")
        rules = [get_rule("no-bare-except")]

        assert run_analysis([str(tmp_path)], rules).ok
        target.write_text(BAD, encoding="utf-8")
        result = run_analysis([str(tmp_path)], rules)
        assert [d.rule for d in result.diagnostics] == ["no-bare-except"]

    def test_clear_resets_counters(self, tmp_path):
        (tmp_path / "clean.py").write_text("x = 1\n", encoding="utf-8")
        run_analysis([str(tmp_path)], [get_rule("no-bare-except")])
        assert parse_cache_stats()["misses"] == 1
        clear_parse_cache()
        assert parse_cache_stats() == {"hits": 0, "misses": 0}


def _git(tmp_path, *args):
    return subprocess.run(
        [
            "git",
            "-c",
            "user.email=lint@example.invalid",
            "-c",
            "user.name=lint",
            *args,
        ],
        cwd=str(tmp_path),
        capture_output=True,
        text=True,
        check=True,
    )


class TestChangedFiles:
    def test_outside_a_repo_returns_none(self, tmp_path):
        assert changed_python_files("HEAD", cwd=tmp_path) is None

    def test_reports_tracked_diffs_and_untracked_files(self, tmp_path):
        if shutil.which("git") is None:
            pytest.skip("git not installed")
        _git(tmp_path, "init", "-q")
        (tmp_path / "stable.py").write_text("x = 1\n", encoding="utf-8")
        (tmp_path / "edited.py").write_text("y = 1\n", encoding="utf-8")
        _git(tmp_path, "add", ".")
        _git(tmp_path, "commit", "-q", "-m", "seed")

        (tmp_path / "edited.py").write_text("y = 2\n", encoding="utf-8")
        (tmp_path / "fresh.py").write_text("z = 1\n", encoding="utf-8")
        (tmp_path / "notes.txt").write_text("not python\n", encoding="utf-8")

        changed = changed_python_files("HEAD", cwd=tmp_path)
        assert changed is not None
        names = {path.name for path in changed}
        assert names == {"edited.py", "fresh.py"}

    def test_missing_ref_returns_none(self, tmp_path):
        if shutil.which("git") is None:
            pytest.skip("git not installed")
        _git(tmp_path, "init", "-q")
        assert changed_python_files("no-such-ref", cwd=tmp_path) is None
