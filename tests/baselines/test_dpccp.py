"""Tests for the DPccp baseline and its csg/cmp enumeration."""

import pytest
from hypothesis import given

from repro.baselines.dpccp import DPccp, enumerate_csg, enumerate_csg_cmp_pairs
from repro.cost.haas import HaasCostModel
from repro.graph import bitset, generators
from repro.partitioning import PARTITIONINGS
from tests.conftest import connected_graphs, small_queries


def _connected_subsets(graph):
    return [
        s
        for s in range(1, 1 << graph.n_vertices)
        if graph.is_connected(s)
    ]


class TestEnumerateCsg:
    @given(connected_graphs(max_vertices=8))
    def test_emits_every_connected_subset_once(self, graph):
        emitted = list(enumerate_csg(graph))
        assert len(emitted) == len(set(emitted))
        assert sorted(emitted) == sorted(_connected_subsets(graph))

    def test_chain_count(self):
        graph = generators.chain_graph(6)
        # Connected subsets of a chain: n*(n+1)/2 contiguous runs.
        assert len(list(enumerate_csg(graph))) == 21

    def test_clique_count(self):
        graph = generators.clique_graph(5)
        # Every non-empty subset of a clique is connected.
        assert len(list(enumerate_csg(graph))) == 2**5 - 1


class TestEnumerateCsgCmpPairs:
    @given(connected_graphs(max_vertices=7))
    def test_matches_partitioning_oracle(self, graph):
        """DPccp's pair enumeration covers exactly P_ccp_sym of the graph."""
        naive = PARTITIONINGS["naive"]
        expected = set()
        for subset in _connected_subsets(graph):
            if subset & (subset - 1):
                for left, right in naive.partitions(graph, subset):
                    expected.add((min(left, right), max(left, right)))
        got = [
            (min(a, b), max(a, b)) for a, b in enumerate_csg_cmp_pairs(graph)
        ]
        assert len(got) == len(set(got))
        assert set(got) == expected

    @pytest.mark.parametrize(
        "family,n,expected",
        [
            ("chain", 10, 165),
            ("star", 10, 2304),
            ("cycle", 10, 405),
            ("clique", 8, 3025),
        ],
    )
    def test_ono_lohman_counts(self, family, n, expected):
        graph = generators.GRAPH_FAMILIES[family](n, None)
        assert sum(1 for _ in enumerate_csg_cmp_pairs(graph)) == expected


class TestDPccpOptimality:
    @given(small_queries(max_n=7))
    def test_plan_covers_query_and_costs_match(self, query):
        algorithm = DPccp(query, HaasCostModel())
        plan = algorithm.run()
        assert plan.vertex_set == query.graph.all_vertices
        assert plan.cost == algorithm.memo.best_cost(query.graph.all_vertices)

    def test_single_relation(self, generator):
        query = generator.generate("chain", 1)
        plan = DPccp(query, HaasCostModel()).run()
        assert plan.cost == 0.0

    def test_plan_class_count_equals_connected_subsets(self, small_query):
        algorithm = DPccp(small_query, HaasCostModel())
        algorithm.run()
        graph = small_query.graph
        connected = sum(
            1 for s in _connected_subsets(graph) if s & (s - 1)
        )
        assert algorithm.stats.plan_classes_built == connected


class TestOracleExport:
    def test_optimal_class_costs_cover_all_classes(self, small_query):
        algorithm = DPccp(small_query, HaasCostModel())
        algorithm.run()
        costs = algorithm.optimal_class_costs()
        assert costs[small_query.graph.all_vertices] == algorithm.memo.best_cost(
            small_query.graph.all_vertices
        )
        for index in range(small_query.n_relations):
            assert costs[bitset.singleton(index)] == 0.0
