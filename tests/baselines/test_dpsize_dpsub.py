"""Tests for the DPsize and DPsub extension baselines."""

import pytest
from hypothesis import given

from repro.baselines.dpccp import DPccp
from repro.baselines.dpsize import DPsize
from repro.baselines.dpsub import DPsub
from repro.cost.haas import HaasCostModel
from tests.conftest import small_queries


@pytest.mark.parametrize("algorithm_cls", [DPsize, DPsub])
class TestAgainstDPccp:
    @given(query=small_queries(max_n=7))
    def test_same_optimal_cost(self, algorithm_cls, query):
        reference = DPccp(query, HaasCostModel()).run()
        plan = algorithm_cls(query, HaasCostModel()).run()
        assert plan.cost == pytest.approx(reference.cost, rel=1e-9)

    @given(query=small_queries(max_n=6))
    def test_same_plan_class_count(self, algorithm_cls, query):
        """All three DP variants build exactly the connected plan classes."""
        reference = DPccp(query, HaasCostModel())
        reference.run()
        algorithm = algorithm_cls(query, HaasCostModel())
        algorithm.run()
        assert (
            algorithm.stats.plan_classes_built
            == reference.stats.plan_classes_built
        )

    def test_single_relation(self, algorithm_cls, generator):
        query = generator.generate("chain", 1)
        plan = algorithm_cls(query, HaasCostModel()).run()
        assert plan.cost == 0.0
        assert plan.vertex_set == 1


class TestConsideredPairCounts:
    def test_dpsub_considers_every_valid_split_once(self, small_query):
        """DPsub's considered count equals the total |P_ccp_sym|."""
        reference = DPccp(small_query, HaasCostModel())
        reference.run()
        algorithm = DPsub(small_query, HaasCostModel())
        algorithm.run()
        assert algorithm.stats.ccps_considered == reference.stats.ccps_enumerated

    def test_dpsize_considers_at_least_every_ccp(self, small_query):
        """DPsize tests more pairs than there are ccps (its inefficiency)."""
        reference = DPccp(small_query, HaasCostModel())
        reference.run()
        algorithm = DPsize(small_query, HaasCostModel())
        algorithm.run()
        assert algorithm.stats.ccps_considered >= reference.stats.ccps_enumerated
