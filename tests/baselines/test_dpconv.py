"""Tests for the DPconv subset-convolution fast path.

The contract under test is *bit-exactness*: inside its eligibility
envelope (``C_out``-shaped cost model, ``topk == 1``) DPconv must return
the same optimal cost as DPccp down to the last ulp, refuse everything
outside the envelope, and the :class:`Optimizer` facade must only ever
engage it when that envelope holds.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.dpconv import DPconv, _MAX_RELATIONS, eligible
from repro.context.context import OptimizationContext
from repro.core.optimizer import (
    DPCONV_AUTO_MIN_RELATIONS,
    Optimizer,
    optimize_topk,
    run_dpccp,
    run_dpconv,
)
from repro.cost.cout import CoutCostModel
from repro.cost.haas import HaasCostModel
from repro.errors import BudgetExceeded, OptimizationError
from repro.plans.validation import validate_plan
from repro.resilience.budget import Budget
from repro.workload.generator import QueryGenerator
from tests.conftest import small_queries


class TestBitExactness:
    @given(small_queries())
    @settings(max_examples=40, deadline=None)
    def test_cost_bit_identical_to_dpccp_under_cout(self, query):
        reference = run_dpccp(query, cost_model_factory=CoutCostModel)
        fast = run_dpconv(query)
        assert fast.cost.hex() == reference.cost.hex()

    @given(small_queries())
    @settings(max_examples=20, deadline=None)
    def test_plans_validate(self, query):
        result = run_dpconv(query)
        validate_plan(result.plan, query)

    def test_single_relation_query(self):
        query = QueryGenerator(seed=7).generate("chain", 1)
        result = run_dpconv(query)
        assert result.plan.vertex_set == query.graph.all_vertices
        assert result.cost == pytest.approx(0.0)

    def test_counts_the_full_convolution_work(self):
        # On a clique every subset is connected, so the sweep's per-class
        # split count is exact: sum over layers of C(n, s) * (2^(s-1)-1).
        query = QueryGenerator(seed=11).generate("clique", 6)
        result = run_dpconv(query)
        import math

        expected = sum(
            math.comb(6, s) * (2 ** (s - 1) - 1) for s in range(2, 7)
        )
        assert result.stats.ccps_enumerated == expected
        assert result.stats.plan_classes_built == 2**6 - 1 - 6


class TestEligibility:
    def _context(self, query, cost_model=None, topk=1):
        return OptimizationContext.for_query(
            query, cost_model=cost_model or CoutCostModel(), topk=topk
        )

    def test_cout_topk1_is_eligible(self):
        query = QueryGenerator(seed=3).generate("star", 6)
        assert eligible(self._context(query))

    def test_haas_model_is_not_eligible(self):
        query = QueryGenerator(seed=3).generate("star", 6)
        context = self._context(query, cost_model=HaasCostModel())
        assert not eligible(context)
        with pytest.raises(OptimizationError, match="cout_shaped"):
            DPconv(context=context)

    def test_ranked_retention_is_not_eligible(self):
        query = QueryGenerator(seed=3).generate("star", 6)
        context = self._context(query, topk=3)
        assert not eligible(context)
        with pytest.raises(OptimizationError, match="topk"):
            DPconv(context=context)

    def test_oversized_query_is_not_eligible(self):
        query = QueryGenerator(seed=3).generate("chain", _MAX_RELATIONS + 1)
        context = self._context(query)
        assert not eligible(context)
        with pytest.raises(OptimizationError, match="dense"):
            DPconv(context=context)

    def test_budget_exhaustion_raises(self):
        query = QueryGenerator(seed=5).generate("clique", 8)
        budget = Budget(max_expansions=10)
        budget.start()
        with pytest.raises(BudgetExceeded):
            DPconv(query, cost_model=CoutCostModel(), budget=budget).run()


class TestFacadeRouting:
    def test_explicit_dpconv_runs_the_fast_path(self):
        query = QueryGenerator(seed=9).generate("cycle", 7)
        result = Optimizer(
            pruning="dpconv", cost_model_factory=CoutCostModel
        ).optimize(query)
        assert result.pruning == "dpconv"
        assert result.enumerator == "dpconv"
        assert result.label == "DPconv"

    def test_explicit_dpconv_falls_back_honestly_under_haas(self):
        query = QueryGenerator(seed=9).generate("cycle", 7)
        result = Optimizer(pruning="dpconv").optimize(query)
        assert result.pruning == "dpccp"
        reference = run_dpccp(query)
        assert result.cost.hex() == reference.cost.hex()

    def test_fallback_emits_a_telemetry_event(self):
        from repro.telemetry import MetricRegistry, Telemetry, Tracer

        telemetry = Telemetry(registry=MetricRegistry(), tracer=Tracer())
        query = QueryGenerator(seed=9).generate("cycle", 7)
        Optimizer(pruning="dpconv", telemetry=telemetry).optimize(query)
        events = [
            event
            for span in telemetry.tracer.finished_spans()
            for event in span.events
            if event["name"] == "dpconv_fallback"
        ]
        assert events, "fallback must be observable in the trace"

    def test_auto_fast_path_engages_on_large_cout_queries(self):
        query = QueryGenerator(seed=2).generate(
            "chain", DPCONV_AUTO_MIN_RELATIONS
        )
        result = Optimizer(cost_model_factory=CoutCostModel).optimize(query)
        assert result.pruning == "dpconv"

    def test_auto_fast_path_matches_the_requested_algorithm(self):
        query = QueryGenerator(seed=2).generate(
            "chain", DPCONV_AUTO_MIN_RELATIONS
        )
        auto = Optimizer(cost_model_factory=CoutCostModel).optimize(query)
        exact = Optimizer(
            cost_model_factory=CoutCostModel, dpconv_auto=False
        ).optimize(query)
        assert auto.cost.hex() == exact.cost.hex()

    def test_auto_fast_path_respects_opt_out(self):
        query = QueryGenerator(seed=2).generate(
            "chain", DPCONV_AUTO_MIN_RELATIONS
        )
        result = Optimizer(
            cost_model_factory=CoutCostModel, dpconv_auto=False
        ).optimize(query)
        assert result.pruning == "apcbi"

    def test_auto_fast_path_stays_off_below_the_size_floor(self):
        query = QueryGenerator(seed=2).generate(
            "chain", DPCONV_AUTO_MIN_RELATIONS - 1
        )
        result = Optimizer(cost_model_factory=CoutCostModel).optimize(query)
        assert result.pruning == "apcbi"

    def test_auto_fast_path_stays_off_under_a_budget(self):
        # DPconv has weak partial-plan salvage; anytime runs must keep
        # the algorithm the caller configured.
        query = QueryGenerator(seed=2).generate(
            "chain", DPCONV_AUTO_MIN_RELATIONS
        )
        result = Optimizer(cost_model_factory=CoutCostModel).optimize(
            query, budget=Budget(max_expansions=10**9)
        )
        assert result.pruning == "apcbi"

    @given(
        st.sampled_from(["chain", "star", "cycle"]),
        st.integers(3, 9),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_auto_never_engages_for_non_cout_models(self, family, n, seed):
        query = QueryGenerator(seed=seed).generate(family, n)
        result = Optimizer(pruning="apcb").optimize(query)
        assert result.pruning == "apcb"

    @given(st.integers(2, 4), st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_auto_never_engages_for_ranked_retention(self, k, seed):
        query = QueryGenerator(seed=seed).generate(
            "chain", DPCONV_AUTO_MIN_RELATIONS
        )
        result = optimize_topk(query, k=k, cost_model_factory=CoutCostModel)
        assert result.pruning == "apcbi"
        assert len(result.ranked) >= 1

    def test_unknown_pruning_still_rejected(self):
        from repro.errors import UnknownAlgorithmError

        with pytest.raises(UnknownAlgorithmError):
            Optimizer(pruning="dpconvv")
