"""Tests for the Query bundle."""

import pytest

from repro.catalog.catalog import Catalog
from repro.catalog.relation import RelationStats
from repro.errors import CatalogError, DisconnectedGraphError
from repro.graph.query_graph import QueryGraph
from repro.query import Query


def _catalog(n, selectivities):
    return Catalog(
        [RelationStats(cardinality=10 * (i + 1), name=f"R{i}") for i in range(n)],
        selectivities,
    )


class TestConstruction:
    def test_valid_query(self):
        query = Query(
            graph=QueryGraph(3, [(0, 1), (1, 2)]),
            catalog=_catalog(3, {(0, 1): 0.1, (1, 2): 0.2}),
            family="chain",
            seed=7,
        )
        assert query.n_relations == 3
        assert query.family == "chain"

    def test_disconnected_graph_rejected(self):
        # 3 vertices, only one edge: vertex 2 is isolated.
        with pytest.raises(DisconnectedGraphError):
            Query(
                graph=QueryGraph(3, [(0, 1)]),
                catalog=_catalog(3, {(0, 1): 0.1}),
            )

    def test_catalog_mismatch_rejected(self):
        with pytest.raises(CatalogError):
            Query(
                graph=QueryGraph(3, [(0, 1), (1, 2)]),
                catalog=_catalog(3, {(0, 1): 0.1}),  # missing edge (1,2)
            )

    def test_catalog_size_mismatch_rejected(self):
        with pytest.raises(CatalogError):
            Query(
                graph=QueryGraph(2, [(0, 1)]),
                catalog=_catalog(3, {(0, 1): 0.1}),
            )


class TestDescribe:
    def test_describe_mentions_family_and_size(self):
        query = Query(
            graph=QueryGraph(2, [(0, 1)]),
            catalog=_catalog(2, {(0, 1): 0.5}),
            family="chain",
            seed=3,
        )
        text = query.describe()
        assert "chain" in text and "n=2" in text and "seed=3" in text

    def test_describe_without_family(self):
        query = Query(
            graph=QueryGraph(2, [(0, 1)]),
            catalog=_catalog(2, {(0, 1): 0.5}),
        )
        assert "query(" in query.describe()


class TestRelabel:
    def test_relabel_keeps_consistency(self):
        query = Query(
            graph=QueryGraph(3, [(0, 1), (1, 2)]),
            catalog=_catalog(3, {(0, 1): 0.1, (1, 2): 0.2}),
        )
        relabeled = query.relabel([2, 1, 0])
        assert relabeled.graph.has_edge(2, 1)
        assert relabeled.catalog.selectivity(2, 1) == 0.1
        assert relabeled.catalog.cardinality(2) == query.catalog.cardinality(0)
        # relabeled query still passes its own validation (checked in init)
        assert relabeled.n_relations == 3
