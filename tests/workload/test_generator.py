"""Tests for the §V-B query generator."""

import pytest

from repro.cost.statistics import StatisticsProvider
from repro.workload.generator import (
    QueryGenerator,
    chain_query,
    clique_query,
    cycle_query,
    generate_query,
    random_acyclic_query,
    random_cyclic_query,
    star_query,
)


class TestBasics:
    def test_unknown_family_rejected(self, generator):
        with pytest.raises(ValueError):
            generator.generate("torus", 5)

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            QueryGenerator(join_scheme="magic")

    def test_per_call_scheme_override_validated(self, generator):
        with pytest.raises(ValueError):
            generator.generate("chain", 4, join_scheme="magic")

    def test_query_is_complete(self, generator):
        query = generator.generate("cyclic", 6)
        assert query.n_relations == 6
        assert query.family == "cyclic"
        assert query.seed is not None
        query.catalog.validate_against(query.graph)

    def test_determinism_under_seed(self):
        a = QueryGenerator(seed=9).generate("acyclic", 7)
        b = QueryGenerator(seed=9).generate("acyclic", 7)
        assert a.graph == b.graph
        assert a.catalog.selectivities == b.catalog.selectivities

    def test_different_seeds_differ(self):
        a = QueryGenerator(seed=1).generate("acyclic", 7)
        b = QueryGenerator(seed=2).generate("acyclic", 7)
        assert a.seed != b.seed


class TestForeignKeyScheme:
    def test_most_edges_are_fk_joins(self):
        # An fk edge has selectivity exactly 1/|one side|; count them.
        generator = QueryGenerator(seed=3, join_scheme="fk")
        fk_edges = 0
        total = 0
        for _ in range(30):
            query = generator.generate("chain", 8)
            for (u, v), sel in query.catalog.selectivities.items():
                total += 1
                cards = {query.catalog.cardinality(u), query.catalog.cardinality(v)}
                if any(abs(sel - 1.0 / c) < 1e-12 for c in cards):
                    fk_edges += 1
        assert fk_edges / total > 0.8

    def test_fk_join_preserves_fk_side_cardinality(self):
        generator = QueryGenerator(seed=3, join_scheme="fk")
        query = generator.generate("chain", 2)
        provider = StatisticsProvider(query)
        joined = provider.cardinality(0b11)
        c0 = query.catalog.cardinality(0)
        c1 = query.catalog.cardinality(1)
        sel = query.catalog.selectivity(0, 1)
        if abs(sel - 1.0 / c0) < 1e-12 or abs(sel - 1.0 / c1) < 1e-12:
            assert joined == pytest.approx(min(c0, c1) * max(c0, c1) * sel)
            assert joined in (pytest.approx(c0), pytest.approx(c1))


class TestStarScheme:
    def test_star_joins_preserve_hub_cardinality(self):
        query = star_query(6, seed=8)
        provider = StatisticsProvider(query)
        hub_card = query.catalog.cardinality(0)
        # Joining the hub with any subset of dimensions keeps |hub|.
        assert provider.cardinality(0b000011) == pytest.approx(hub_card)
        assert provider.cardinality(0b011111) == pytest.approx(hub_card)
        assert provider.cardinality(0b111111) == pytest.approx(hub_card)


class TestConvenienceConstructors:
    @pytest.mark.parametrize(
        "factory,family",
        [
            (chain_query, "chain"),
            (star_query, "star"),
            (cycle_query, "cycle"),
            (clique_query, "clique"),
            (random_acyclic_query, "acyclic"),
            (random_cyclic_query, "cyclic"),
        ],
    )
    def test_factory_sets_family(self, factory, family):
        query = factory(5, seed=1)
        assert query.family == family
        assert query.n_relations == 5

    def test_generate_query_scheme_parameter(self):
        query = generate_query("chain", 5, seed=2, join_scheme="random")
        assert query.n_relations == 5
