"""Tests for workload suites."""

import pytest

from repro.workload.suite import (
    DEFAULT_FAMILY_SPECS,
    FamilySpec,
    WorkloadSuite,
    default_suite,
)


class TestFamilySpec:
    def test_total(self):
        assert FamilySpec("chain", sizes=(4, 5, 6), queries_per_size=2).total() == 6


class TestWorkloadSuite:
    def test_all_six_families_by_default(self):
        suite = WorkloadSuite()
        assert set(suite.families) == {
            "chain", "star", "cycle", "clique", "acyclic", "cyclic",
        }

    def test_queries_match_spec(self):
        spec = FamilySpec("chain", sizes=(4, 5), queries_per_size=2)
        suite = WorkloadSuite([spec])
        queries = suite.queries("chain")
        assert len(queries) == 4
        assert sorted(q.n_relations for q in queries) == [4, 4, 5, 5]

    def test_queries_are_cached(self):
        suite = WorkloadSuite([FamilySpec("chain", sizes=(4,), queries_per_size=1)])
        assert suite.queries("chain") is suite.queries("chain")

    def test_determinism_across_instances(self):
        spec = [FamilySpec("acyclic", sizes=(5,), queries_per_size=2)]
        a = WorkloadSuite(spec, seed=77).queries("acyclic")
        b = WorkloadSuite(spec, seed=77).queries("acyclic")
        assert [q.seed for q in a] == [q.seed for q in b]
        assert [q.graph for q in a] == [q.graph for q in b]

    def test_different_seed_changes_queries(self):
        spec = [FamilySpec("acyclic", sizes=(5,), queries_per_size=2)]
        a = WorkloadSuite(spec, seed=1).queries("acyclic")
        b = WorkloadSuite(spec, seed=2).queries("acyclic")
        assert [q.seed for q in a] != [q.seed for q in b]

    def test_iteration_yields_all_families(self):
        suite = WorkloadSuite(
            [FamilySpec("chain", sizes=(4,)), FamilySpec("star", sizes=(4,))]
        )
        families = dict(suite)
        assert set(families) == {"chain", "star"}

    def test_total_queries(self):
        suite = WorkloadSuite(
            [FamilySpec("chain", sizes=(4, 5), queries_per_size=3)]
        )
        assert suite.total_queries() == 6

    def test_invalid_scheme_rejected(self):
        with pytest.raises(ValueError):
            WorkloadSuite(join_scheme="bogus")


class TestMixedScheme:
    def test_mixed_alternates_fk_and_random(self):
        spec = [FamilySpec("chain", sizes=(6,), queries_per_size=6)]
        mixed = WorkloadSuite(spec, seed=5, join_scheme="mixed").queries("chain")
        fk_only = WorkloadSuite(spec, seed=5, join_scheme="fk").queries("chain")
        # Same seeds, so even-indexed (fk) queries coincide while the
        # odd-indexed ones differ in selectivities.
        assert mixed[0].catalog.selectivities == fk_only[0].catalog.selectivities
        differing = [
            i for i in range(1, 6, 2)
            if mixed[i].catalog.selectivities != fk_only[i].catalog.selectivities
        ]
        assert differing  # at least one random-scheme query actually differs


class TestDefaultSuite:
    def test_scale_multiplies_queries(self):
        base = default_suite(scale=1.0)
        doubled = default_suite(scale=2.0)
        assert doubled.total_queries() == pytest.approx(
            2 * base.total_queries(), rel=0.2
        )

    def test_scale_has_minimum_one(self):
        tiny = default_suite(scale=0.01)
        for family in tiny.families:
            assert tiny.spec(family).queries_per_size == 1

    def test_default_specs_cover_expected_sizes(self):
        by_family = {spec.family: spec for spec in DEFAULT_FAMILY_SPECS}
        assert max(by_family["clique"].sizes) <= 10  # pure-Python budget
        assert max(by_family["chain"].sizes) >= 12
