"""Tests for the Fig. 6 size distributions."""

import random

import pytest

from repro.workload import steinbrunn


class TestDistributions:
    def test_relation_buckets_sum_to_one(self):
        total = sum(p for _, _, p in steinbrunn.RELATION_SIZE_BUCKETS)
        assert total == pytest.approx(1.0)

    def test_domain_buckets_sum_to_one(self):
        total = sum(p for _, _, p in steinbrunn.DOMAIN_SIZE_BUCKETS)
        assert total == pytest.approx(1.0)

    def test_relation_sizes_within_global_range(self):
        rng = random.Random(7)
        for _ in range(500):
            size = steinbrunn.sample_relation_size(rng)
            assert 10 <= size < 1_000_000

    def test_domain_sizes_within_global_range(self):
        rng = random.Random(7)
        for _ in range(500):
            size = steinbrunn.sample_domain_size(rng)
            assert 2 <= size < 1_000

    def test_bucket_frequencies_roughly_match(self):
        rng = random.Random(11)
        samples = [steinbrunn.sample_relation_size(rng) for _ in range(4000)]
        small = sum(1 for s in samples if s < 100) / len(samples)
        # 15% bucket, allow generous sampling noise.
        assert 0.10 < small < 0.20

    def test_sampling_is_deterministic_under_seed(self):
        a = [steinbrunn.sample_relation_size(random.Random(3)) for _ in range(5)]
        b = [steinbrunn.sample_relation_size(random.Random(3)) for _ in range(5)]
        assert a == b

    def test_sample_domain_sizes_count(self):
        sizes = steinbrunn.sample_domain_sizes(4, random.Random(1))
        assert len(sizes) == 4
