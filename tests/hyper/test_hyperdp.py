"""Tests for the hypergraph optimizer."""

import pytest
from hypothesis import given

from repro.baselines.dpccp import DPccp
from repro.cost.haas import HaasCostModel
from repro.cost.statistics import StatisticsProvider
from repro.errors import OptimizationError
from repro.hyper.hypergraph import Hyperedge, Hypergraph, from_query_graph
from repro.hyper.hyperdp import HyperDP
from repro.plans.builder import PlanBuilder
from tests.conftest import small_queries


def _operator_cost_of(query):
    builder = PlanBuilder(StatisticsProvider(query), HaasCostModel())
    return builder.operator_cost


class TestAgainstDPccpOnSimpleGraphs:
    @given(query=small_queries(max_n=7))
    def test_same_optimal_cost(self, query):
        """On lifted simple graphs HyperDP must reproduce DPccp exactly."""
        reference = DPccp(query, HaasCostModel()).run()
        optimizer = HyperDP(
            from_query_graph(query.graph), _operator_cost_of(query)
        )
        plan = optimizer.run()
        assert plan.cost == pytest.approx(reference.cost, rel=1e-9)
        assert plan.vertex_set == query.graph.all_vertices

    @given(query=small_queries(max_n=6))
    def test_same_plan_class_count(self, query):
        reference = DPccp(query, HaasCostModel())
        reference.run()
        optimizer = HyperDP(
            from_query_graph(query.graph), _operator_cost_of(query)
        )
        optimizer.run()
        assert optimizer.n_plan_classes() == reference.stats.plan_classes_built


class TestComplexPredicates:
    def test_complex_edge_forces_grouping(self):
        """R0 -(complex)- {R1, R2} with a simple R1-R2 edge: every plan
        must join R1 with R2 before R0 can join in."""
        graph = Hypergraph(
            3, [Hyperedge(0b010, 0b100), Hyperedge(0b001, 0b110)]
        )
        optimizer = HyperDP(graph, lambda left, right: 1.0)
        plan = optimizer.run()
        assert plan.cost == 2.0  # exactly two joins
        assert plan.sexpr() in ("(R0 x (R1 x R2))", "((R1 x R2) x R0)")

    def test_undecomposable_hypergraph_rejected(self):
        """A single 3-way hyperedge admits no binary join at all."""
        graph = Hypergraph(3, [Hyperedge(0b001, 0b110)])
        optimizer = HyperDP(graph, lambda left, right: 1.0)
        with pytest.raises(OptimizationError, match="no cross-product-free"):
            optimizer.run()

    def test_disconnected_hypergraph_rejected(self):
        graph = Hypergraph(3, [Hyperedge(0b001, 0b010)])  # R2 isolated
        with pytest.raises(OptimizationError, match="disconnected"):
            HyperDP(graph, lambda left, right: 1.0).run()

    def test_cost_callback_drives_plan_choice(self):
        """A cost function that penalizes one split flips the plan."""
        # Chain R0 - R1 - R2 with controllable costs.
        graph = Hypergraph(
            3, [Hyperedge(0b001, 0b010), Hyperedge(0b010, 0b100)]
        )

        def expensive_left_pair(left, right):
            pair = left | right
            return 100.0 if pair == 0b011 else 1.0

        plan = HyperDP(graph, expensive_left_pair).run()
        # Joining R1 with R2 first avoids the expensive {R0, R1} class.
        assert plan.cost == 2.0
        assert "R1 x R2" in plan.sexpr() or "R2 x R1" in plan.sexpr()


class TestMemo:
    def test_memo_contains_all_connected_classes(self):
        graph = Hypergraph(
            3, [Hyperedge(0b001, 0b010), Hyperedge(0b010, 0b100)]
        )
        optimizer = HyperDP(graph, lambda left, right: 1.0)
        optimizer.run()
        assert set(optimizer.memo) == {0b001, 0b010, 0b100, 0b011, 0b110, 0b111}
