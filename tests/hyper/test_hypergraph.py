"""Tests for the hypergraph substrate."""

import pytest
from hypothesis import given

from repro.errors import GraphError
from repro.graph import bitset, generators
from repro.hyper.hypergraph import Hyperedge, Hypergraph, from_query_graph
from repro.partitioning import PARTITIONINGS
from tests.conftest import connected_graphs


class TestHyperedge:
    def test_orientation_normalized(self):
        assert Hyperedge(0b100, 0b011) == Hyperedge(0b011, 0b100)
        assert hash(Hyperedge(0b100, 0b011)) == hash(Hyperedge(0b011, 0b100))

    def test_simple_detection(self):
        assert Hyperedge(0b001, 0b010).is_simple
        assert not Hyperedge(0b011, 0b100).is_simple

    def test_empty_endpoint_rejected(self):
        with pytest.raises(GraphError):
            Hyperedge(0, 0b1)

    def test_overlapping_endpoints_rejected(self):
        with pytest.raises(GraphError):
            Hyperedge(0b011, 0b010)


class TestConnectivity:
    def test_singletons_connected(self):
        graph = Hypergraph(3, [Hyperedge(0b001, 0b110)])
        assert graph.is_connected(0b001)
        assert graph.is_connected(0b010)

    def test_hyperedge_connects_only_when_fully_inside(self):
        # R0 -(complex)- {R1, R2}: the pair {R1, R2} alone has no usable
        # edge, and neither does {R0, R1}.
        graph = Hypergraph(3, [Hyperedge(0b001, 0b110)])
        assert graph.is_connected(0b111)
        assert not graph.is_connected(0b110)
        assert not graph.is_connected(0b011)

    def test_empty_set_not_connected(self):
        graph = Hypergraph(2, [Hyperedge(0b01, 0b10)])
        assert not graph.is_connected(0)

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(GraphError):
            Hypergraph(2, [Hyperedge(0b001, 0b100)])

    @given(connected_graphs(max_vertices=7))
    def test_simple_graph_connectivity_matches(self, simple):
        """On lifted simple graphs the two connectivity notions agree."""
        hyper = from_query_graph(simple)
        for subset in range(1, 1 << simple.n_vertices):
            assert hyper.is_connected(subset) == simple.is_connected(subset)


class TestCsgCmpPairs:
    @given(connected_graphs(max_vertices=7))
    def test_simple_graphs_match_partitioning_oracle(self, simple):
        hyper = from_query_graph(simple)
        naive = PARTITIONINGS["naive"]
        for subset in range(1, 1 << simple.n_vertices):
            if bitset.bit_count(subset) < 2 or not simple.is_connected(subset):
                continue
            expected = sorted(
                (min(a, b), max(a, b))
                for a, b in naive.partitions(simple, subset)
            )
            got = sorted(
                (min(a, b), max(a, b))
                for a, b in hyper.csg_cmp_pairs(subset)
            )
            assert got == expected

    def test_complex_edge_blocks_partial_splits(self):
        # Triangle via one complex predicate: only the split that keeps
        # {R1, R2} together... no wait: no subset of size 2 is connected,
        # so the full set has NO ccp at all.
        graph = Hypergraph(3, [Hyperedge(0b001, 0b110)])
        assert list(graph.csg_cmp_pairs(0b111)) == []

    def test_mixed_simple_and_complex(self):
        # R1 - R2 simple edge, plus R0 -(complex)- {R1, R2}.
        graph = Hypergraph(
            3, [Hyperedge(0b010, 0b100), Hyperedge(0b001, 0b110)]
        )
        pairs = sorted(graph.csg_cmp_pairs(0b111))
        # The only valid split keeps {R1, R2} together against {R0}.
        assert pairs == [(0b001, 0b110)]

    def test_singleton_has_no_pairs(self):
        graph = Hypergraph(2, [Hyperedge(0b01, 0b10)])
        assert list(graph.csg_cmp_pairs(0b01)) == []


class TestConnectedSubsets:
    def test_ascending_order(self):
        graph = from_query_graph(generators.chain_graph(4))
        subsets = graph.connected_subsets()
        assert subsets == sorted(subsets)
        assert 0b1111 in subsets
        assert 0b0101 not in subsets  # {0, 2} of a chain
