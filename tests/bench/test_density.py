"""Tests for the density-profile helpers."""

import math

import pytest

from repro.bench.density import density_profile, render_density


class TestDensityProfile:
    def test_quartiles(self):
        profile = density_profile("x", [0.1, 0.2, 0.3, 0.4])
        assert profile.quartiles[0] <= profile.median <= profile.quartiles[2]
        assert profile.median == pytest.approx(0.25)
        assert profile.count == 4

    def test_histogram_is_cumulative_partition(self):
        profile = density_profile("x", [0.005, 0.05, 0.5, 5.0, 50.0])
        total = sum(fraction for _, fraction in profile.histogram)
        assert total == pytest.approx(1.0)
        assert math.isinf(profile.histogram[-1][0])
        # One value (50.0) exceeds the last finite edge (10x).
        assert profile.histogram[-1][1] == pytest.approx(0.2)

    def test_empty_series(self):
        profile = density_profile("x", [])
        assert profile.count == 0
        assert all(fraction == 0 for _, fraction in profile.histogram)


class TestRenderDensity:
    def test_renders_all_labels(self):
        profiles = [
            density_profile("fast", [0.01, 0.02]),
            density_profile("slow", [1.5, 2.5]),
        ]
        text = render_density(profiles)
        assert "fast" in text and "slow" in text
        assert "median" in text
        assert "inf" in text
