"""Tests for table rendering."""

from repro.bench.harness import AlgorithmSpec, run_workload
from repro.bench.tables import render_series, render_table2, render_table3
from repro.workload.generator import QueryGenerator

FAST = (
    AlgorithmSpec("mincut_conservative", "none"),
    AlgorithmSpec("mincut_conservative", "apcbi"),
)


def _families():
    generator = QueryGenerator(seed=4)
    queries = [generator.generate("chain", 5) for _ in range(2)]
    return {"chain": run_workload(queries, FAST)}


class TestTable2:
    def test_contains_all_labels_and_dpccp_row(self):
        text = render_table2(_families(), [s.label for s in FAST])
        assert "DPccp (seconds)" in text
        assert "TDMcC" in text
        assert "TDMcC_APCBI" in text
        assert "chain min" in text and "chain avg" in text


class TestTable3:
    def test_contains_counter_columns(self):
        text = render_table3(_families(), [s.label for s in FAST])
        assert "avg_s" in text and "max_f" in text
        assert "TDMcC_APCBI" in text


class TestSeries:
    def test_aligned_columns_and_missing_values(self):
        text = render_series(
            "title", "#rel",
            {"A": {4: 1.0, 5: 2.0}, "B": {5: 3.0}},
        )
        assert "title" in text
        lines = text.splitlines()
        assert any("4" in line and "-" in line for line in lines)
