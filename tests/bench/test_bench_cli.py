"""Tests for the repro-bench CLI (list / run / report subcommands)."""

import json

import pytest

from repro.bench.__main__ import main
from repro.bench.experiments import EXPERIMENTS


class TestList:
    def test_lists_every_experiment(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in output


class TestRun:
    def test_unknown_experiment_rejected(self, capsys):
        assert main(["run", "figure99"]) == 2
        assert "unknown experiments" in capsys.readouterr().err

    def test_run_one_experiment(self, tmp_path, capsys, monkeypatch):
        # Patch in a fast fake so the CLI path is exercised without the
        # real measurement cost.
        from repro.bench.experiments import ExperimentResult

        def fake_driver():
            """A fast fake experiment."""
            return ExperimentResult(
                name="figure13", description="fake", text="FAKE TEXT",
                data={"x": 1},
            )

        monkeypatch.setitem(EXPERIMENTS, "figure13", fake_driver)
        assert main(["run", "figure13", "--results-dir", str(tmp_path)]) == 0
        output = capsys.readouterr().out
        assert "FAKE TEXT" in output
        assert json.loads((tmp_path / "figure13.json").read_text()) == {"x": 1}
        assert "fake" in (tmp_path / "figure13.txt").read_text()


class TestReport:
    def test_report_subcommand(self, tmp_path, capsys):
        assert main(["report", "--results-dir", str(tmp_path)]) == 0
        assert "Paper vs. measured" in capsys.readouterr().out
