"""Tests for the enumspeed benchmark and its perf-regression gate."""

import copy

import pytest

from repro.bench.enumspeed import check_against, run_benchmark


def _entry(family, relations, normed, seconds=None, gated=True):
    names = list(normed)
    seconds = seconds or {name: normed[name] * 1.0 for name in names}
    return {
        "family": family,
        "relations": relations,
        "seconds": seconds,
        "normed": normed,
        "cost_hex": "0x1.0p+0",
        "gated": gated,
    }


def _report(entries, divergences=()):
    return {
        "benchmark": "enumspeed",
        "seed": 1,
        "rounds": 1,
        "algorithms": ["dpccp", "dpconv", "topdown_apcbi"],
        "min_seconds": 0.05,
        "entries": entries,
        "cost_divergences": list(divergences),
    }


class TestRunBenchmark:
    def test_small_matrix_agrees_bit_for_bit(self):
        report = run_benchmark(
            rounds=1, workload=(("chain", 5), ("clique", 6))
        )
        assert report["cost_divergences"] == []
        assert [e["family"] for e in report["entries"]] == ["chain", "clique"]
        for entry in report["entries"]:
            # DPccp is the normalizer: its normed time is 1.0 by
            # construction, and every algorithm got measured.
            assert entry["normed"]["dpccp"] == pytest.approx(1.0)
            assert set(entry["seconds"]) == {
                "dpccp",
                "dpconv",
                "topdown_apcbi",
            }

    def test_rejects_zero_rounds(self):
        with pytest.raises(ValueError):
            run_benchmark(rounds=0)


class TestCheckAgainst:
    BASE = _report(
        [
            _entry(
                "clique",
                12,
                {"dpccp": 1.0, "dpconv": 0.1, "topdown_apcbi": 0.9},
                seconds={"dpccp": 1.0, "dpconv": 0.1, "topdown_apcbi": 0.9},
            ),
            _entry(
                "chain",
                8,
                {"dpccp": 1.0, "dpconv": 0.5, "topdown_apcbi": 0.9},
                seconds={
                    "dpccp": 0.001,
                    "dpconv": 0.0005,
                    "topdown_apcbi": 0.0009,
                },
                gated=False,
            ),
        ]
    )

    def test_identical_report_passes(self):
        assert check_against(copy.deepcopy(self.BASE), self.BASE) == []

    def test_injected_regression_fails(self):
        # The fast path got 2x slower relative to DPccp: 15% tolerance
        # must not absorb that.
        slow = copy.deepcopy(self.BASE)
        slow["entries"][0]["normed"]["dpconv"] = 0.2
        slow["entries"][0]["seconds"]["dpconv"] = 0.2
        failures = check_against(slow, self.BASE)
        assert len(failures) == 1
        assert "dpconv" in failures[0] and "clique-12" in failures[0]

    def test_slowdown_within_threshold_passes(self):
        wobble = copy.deepcopy(self.BASE)
        wobble["entries"][0]["normed"]["dpconv"] = 0.11
        wobble["entries"][0]["seconds"]["dpconv"] = 0.11
        assert check_against(wobble, self.BASE) == []

    def test_cost_divergence_always_fails(self):
        diverged = copy.deepcopy(self.BASE)
        diverged["cost_divergences"] = [
            "clique-12: dpconv cost 0x1.1p+0 != dpccp cost 0x1.0p+0"
        ]
        failures = check_against(diverged, self.BASE)
        assert failures == diverged["cost_divergences"]

    def test_missing_entry_fails(self):
        trimmed = copy.deepcopy(self.BASE)
        trimmed["entries"] = trimmed["entries"][1:]
        failures = check_against(trimmed, self.BASE)
        assert len(failures) == 1
        assert "missing" in failures[0]

    def test_ungated_noise_entries_are_not_compared(self):
        # chain-8 is below the noise floor on both sides; even a 10x
        # normed-time swing there must not fail the gate.
        noisy = copy.deepcopy(self.BASE)
        noisy["entries"][1]["normed"]["dpconv"] = 5.0
        assert check_against(noisy, self.BASE) == []

    def test_sub_floor_timings_of_gated_entries_are_skipped(self):
        # Entry is gated (DPccp spends real time) but one algorithm
        # finishes in microseconds on both sides: its ratio is noise.
        base = _report(
            [
                _entry(
                    "star",
                    10,
                    {"dpccp": 1.0, "dpconv": 0.01, "topdown_apcbi": 0.9},
                    seconds={
                        "dpccp": 0.5,
                        "dpconv": 0.005,
                        "topdown_apcbi": 0.45,
                    },
                )
            ]
        )
        wobbly = copy.deepcopy(base)
        wobbly["entries"][0]["normed"]["dpconv"] = 0.02
        wobbly["entries"][0]["seconds"]["dpconv"] = 0.01
        assert check_against(wobbly, base) == []
