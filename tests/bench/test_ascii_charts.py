"""Tests for the ASCII chart renderers."""

import pytest

from repro.bench.ascii_charts import bar_chart, line_chart


class TestLineChart:
    def test_renders_all_series_markers(self):
        chart = line_chart(
            {
                "fast": {5: 0.1, 6: 0.2, 7: 0.1},
                "slow": {5: 1.5, 6: 2.0, 7: 4.0},
            },
            title="demo",
        )
        assert "demo" in chart
        assert "* = fast" in chart
        assert "o = slow" in chart
        assert "#relations" in chart

    def test_log_scale_spreads_magnitudes(self):
        chart = line_chart({"a": {1: 0.01, 2: 10.0}}, height=10)
        rows = [line for line in chart.splitlines() if "|" in line]
        marked = [index for index, row in enumerate(rows) if "*" in row]
        # the two points land near opposite ends of the y axis
        assert max(marked) - min(marked) >= 7

    def test_empty_series(self):
        assert "(no data)" in line_chart({}, title="t")

    def test_single_point(self):
        chart = line_chart({"a": {4: 1.0}})
        assert "*" in chart

    def test_linear_scale(self):
        chart = line_chart({"a": {1: 1.0, 2: 2.0}}, log_y=False)
        assert "linear" in chart


class TestBarChart:
    def test_bars_scale_with_values(self):
        chart = bar_chart({"small": 1.0, "big": 4.0}, width=40)
        lines = chart.splitlines()
        small_bar = next(line for line in lines if line.startswith("small"))
        big_bar = next(line for line in lines if line.startswith("big"))
        assert big_bar.count("#") == 40
        assert small_bar.count("#") == 10

    def test_values_printed(self):
        chart = bar_chart({"a": 1.234}, unit="x")
        assert "1.234x" in chart

    def test_empty(self):
        assert "(no data)" in bar_chart({}, title="t")

    def test_zero_peak(self):
        chart = bar_chart({"a": 0.0})
        assert "#" not in chart
