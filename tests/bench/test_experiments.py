"""Smoke tests for the experiment drivers (tiny parameters)."""

import json

import pytest

from repro.bench.experiments import (
    EXPERIMENTS,
    EvaluationRun,
    figure7,
    figure8,
    figure10,
    figure13,
    figure14,
    figure15,
    run_experiment,
    table2,
    table3,
)
from repro.workload.suite import FamilySpec, WorkloadSuite


@pytest.fixture(scope="module")
def tiny_run():
    suite = WorkloadSuite(
        [
            FamilySpec("chain", sizes=(5,), queries_per_size=2),
            FamilySpec("star", sizes=(5,), queries_per_size=2),
        ],
        seed=99,
    )
    return EvaluationRun(suite)


class TestTables:
    def test_table2_renders_and_serializes(self, tiny_run, tmp_path):
        result = table2(tiny_run)
        assert "DPccp" in result.text
        path = result.save(tmp_path)
        payload = json.loads(path.read_text())
        assert "chain" in payload and "star" in payload

    def test_table3_shares_the_run(self, tiny_run):
        result = table3(tiny_run)
        assert "avg_s" in result.text

    def test_star_overhead_visible_in_table2_data(self, tiny_run):
        """Pruning-disabled stars: APCBI builds every class (avg_s = 1)."""
        data = tiny_run.data()
        star = data["star"]["algorithms"]["TDMcC_APCBI"]
        assert star["avg_s"] == pytest.approx(1.0)


class TestScalingFigures:
    def test_figure7_tiny(self):
        result = figure7(sizes=(5, 6), queries_per_size=1)
        assert "#relations" in result.text
        assert "normed_time_by_size" in result.data
        series = result.data["normed_time_by_size"]["TDMcC_APCBI"]
        assert set(series) == {5, 6}

    def test_figure10_star_overhead(self):
        result = figure10(sizes=(5, 6), queries_per_size=1)
        series = result.data["normed_time_by_size"]
        # On pruning-disabled stars no algorithm can win big; the APCB
        # variants pay overhead (normed time around or above 1).
        assert all(v > 0.3 for v in series["TDMcL_APCB"].values())


class TestFixedSizeFigures:
    def test_figure13_tiny(self):
        result = figure13(n_relations=7, n_queries=2)
        assert result.data["n_relations"] == 7
        assert "TDMcC_APCBI" in result.data["avg_normed_time"]

    def test_figure8_density(self):
        result = figure8(sizes=(5, 6), queries_per_size=1)
        assert "median" in result.text
        assert "TDMcC_APCBI" in result.data

    def test_figure14_density(self):
        result = figure14(n_relations=7, n_queries=2)
        assert "TDMcC_APCBI" in result.data


class TestAblation:
    def test_figure15_tiny(self):
        result = figure15(
            acyclic_sizes=(6,), cyclic_sizes=(6,), queries_per_size=1
        )
        assert "APCB" in result.text
        assert set(result.data) == {"acyclic", "cyclic"}
        assert "APCBI" in result.data["acyclic"]


class TestRegistry:
    def test_all_experiments_registered(self):
        assert set(EXPERIMENTS) == {
            "table2", "table3",
            "figure7", "figure8", "figure9", "figure10", "figure11",
            "figure12", "figure13", "figure14", "figure15",
            "enumerator_overhead",
        }

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            run_experiment("figure99")
