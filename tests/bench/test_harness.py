"""Tests for the measurement harness."""

import json

import pytest

from repro.bench.harness import (
    CHART_ALGORITHMS,
    PAPER_ALGORITHMS,
    AlgorithmSpec,
    FailureCounts,
    NormedSummary,
    load_checkpoint,
    run_query_matrix,
    run_workload,
)
from repro.resilience import Budget
from repro.workload.generator import QueryGenerator

FAST = (
    AlgorithmSpec("mincut_conservative", "none"),
    AlgorithmSpec("mincut_conservative", "apcbi"),
)


class TestSpecs:
    def test_paper_matrix_has_fifteen_combinations(self):
        assert len(PAPER_ALGORITHMS) == 15

    def test_chart_subset_matches_section_vc(self):
        labels = [spec.label for spec in CHART_ALGORITHMS]
        assert labels == [
            "TDMcL", "TDMcL_APCB", "TDMcB_APCB", "TDMcB_APCBI", "TDMcC_APCBI",
        ]

    def test_display_override(self):
        spec = AlgorithmSpec("mincut_lazy", "apcb", display="custom")
        assert spec.label == "custom"


class TestNormedSummary:
    def test_of_values(self):
        summary = NormedSummary.of([1.0, 3.0, 2.0])
        assert summary.minimum == 1.0
        assert summary.maximum == 3.0
        assert summary.average == 2.0
        assert summary.count == 3

    def test_of_empty(self):
        summary = NormedSummary.of([])
        assert summary.count == 0
        assert summary.average != summary.average  # NaN


class TestRunQueryMatrix:
    def test_measures_all_algorithms(self, small_query):
        measurement = run_query_matrix(small_query, FAST)
        assert set(measurement.normed_times) == {spec.label for spec in FAST}
        assert all(v > 0 for v in measurement.normed_times.values())
        assert measurement.dpccp_classes > 0

    def test_success_counters_normalized(self, small_query):
        measurement = run_query_matrix(small_query, FAST)
        # Unpruned top-down builds exactly DPccp's classes.
        assert measurement.normed_success["TDMcC"] == pytest.approx(1.0)
        assert measurement.normed_success["TDMcC_APCBI"] <= 1.0 + 1e-9

    def test_check_costs_can_be_disabled(self, small_query):
        measurement = run_query_matrix(small_query, FAST, check_costs=False)
        assert set(measurement.normed_times) == {spec.label for spec in FAST}

    def test_config_override_flows_through(self, small_query):
        from repro.core.advancements import AdvancementConfig

        spec = AlgorithmSpec(
            "mincut_conservative",
            "apcbi",
            config=AdvancementConfig.all_off(),
            display="bare",
        )
        measurement = run_query_matrix(small_query, [spec])
        assert "bare" in measurement.normed_times


class TestRunWorkload:
    @pytest.fixture
    def workload(self):
        generator = QueryGenerator(seed=3)
        return [generator.generate("acyclic", n) for n in (5, 5, 6, 6)]

    def test_summaries(self, workload):
        measurement = run_workload(workload, FAST)
        summary = measurement.normed_time_summary("TDMcC_APCBI")
        assert summary.count == 4
        assert summary.minimum <= summary.average <= summary.maximum

    def test_by_size_buckets(self, workload):
        measurement = run_workload(workload, FAST)
        by_size = measurement.by_size("TDMcC")
        assert set(by_size) == {5, 6}

    def test_dpccp_by_size(self, workload):
        measurement = run_workload(workload, FAST)
        assert set(measurement.dpccp_by_size()) == {5, 6}

    def test_progress_callback(self, workload):
        seen = []
        run_workload(workload, FAST, progress=lambda i, n: seen.append((i, n)))
        assert seen == [(1, 4), (2, 4), (3, 4), (4, 4)]

    def test_normed_times_series(self, workload):
        measurement = run_workload(workload, FAST)
        assert len(measurement.normed_times("TDMcC")) == 4


class TestFailureCounts:
    def test_tally_categorizes_by_prefix(self):
        counts = FailureCounts.tally(
            ["timeout", "error: boom", "degraded: ikkbz", "skipped: x", "weird"]
        )
        assert counts.timeouts == 1
        assert counts.errors == 2  # unknown categories count as errors
        assert counts.degraded == 1
        assert counts.skipped == 1
        assert counts.total == 5


class TestBudgetedMatrix:
    def test_unbudgeted_measurement_has_no_failures(self, small_query):
        measurement = run_query_matrix(small_query, FAST)
        assert measurement.ok
        assert measurement.failures == {}

    def test_impossible_budget_records_timeouts_not_raises(self, small_query):
        measurement = run_query_matrix(
            small_query, FAST, budget_factory=lambda: Budget(max_expansions=1)
        )
        # Even the DPccp baseline cannot finish; algorithms are skipped.
        assert measurement.failures["DPccp"].startswith("timeout")
        for spec in FAST:
            assert measurement.failures[spec.label].startswith("skipped")
        assert measurement.dpccp_seconds != measurement.dpccp_seconds  # NaN

    def test_failed_baseline_excluded_from_summaries(self, small_query):
        workload_measurement = run_workload(
            [small_query], FAST, budget_factory=lambda: Budget(max_expansions=1)
        )
        assert workload_measurement.dpccp_summary().count == 0
        assert workload_measurement.dpccp_by_size() == {}
        assert workload_measurement.n_failed_queries == 1

    def test_algorithm_timeout_recorded_per_label(self):
        # DPccp finishes a clique-9 in far fewer expansions than unpruned
        # top-down enumeration, so a cap between the two isolates the
        # failure to the algorithm under test.
        query = QueryGenerator(seed=11).generate("clique", 9)
        spec = AlgorithmSpec("mincut_lazy", "none")
        measurement = run_query_matrix(
            query, [spec], budget_factory=lambda: Budget(max_expansions=23_000)
        )
        assert "DPccp" not in measurement.failures
        assert measurement.failures[spec.label] == "timeout"
        assert spec.label not in measurement.normed_times

    def test_resilient_mode_records_degradation_with_a_time(self):
        query = QueryGenerator(seed=11).generate("clique", 9)
        spec = AlgorithmSpec("mincut_lazy", "none")
        measurement = run_query_matrix(
            query,
            [spec],
            budget_factory=lambda: Budget(max_expansions=23_000),
            resilient=True,
        )
        assert measurement.failures[spec.label].startswith("degraded: ")
        assert measurement.normed_times[spec.label] > 0

    def test_resilient_exact_path_matches_plain(self, small_query):
        plain = run_query_matrix(small_query, FAST)
        resilient = run_query_matrix(small_query, FAST, resilient=True)
        assert resilient.ok
        assert set(resilient.normed_times) == set(plain.normed_times)


class TestCheckpointing:
    @pytest.fixture
    def workload(self):
        generator = QueryGenerator(seed=3)
        return [generator.generate("acyclic", n) for n in (5, 5, 6)]

    def test_checkpoint_written_one_line_per_query(self, workload, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        run_workload(workload, FAST, checkpoint_path=path)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 3
        records = [json.loads(line) for line in lines]
        assert [record["index"] for record in records] == [0, 1, 2]
        assert records[0]["query"] == workload[0].describe()

    def test_resume_reuses_completed_measurements(self, workload, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        first = run_workload(workload, FAST, checkpoint_path=path)
        second = run_workload(workload, FAST, checkpoint_path=path)
        # Wall-clock timings are never bit-identical across runs, so equal
        # floats prove the measurement was loaded, not recomputed.
        for a, b in zip(first.measurements, second.measurements):
            assert a.dpccp_seconds == b.dpccp_seconds
            assert a.normed_times == b.normed_times

    def test_truncated_tail_is_recomputed(self, workload, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        first = run_workload(workload, FAST, checkpoint_path=path)
        content = path.read_text()
        path.write_text(content[: content.rfind("{")])  # kill mid-write
        assert len(load_checkpoint(path)) == 2
        second = run_workload(workload, FAST, checkpoint_path=path)
        assert len(second.measurements) == 3
        # Intact prefix reused, final measurement freshly computed.
        assert (
            second.measurements[0].dpccp_seconds
            == first.measurements[0].dpccp_seconds
        )
        summary = second.normed_time_summary("TDMcC_APCBI")
        assert summary.count == 3

    def test_stale_records_are_ignored(self, workload, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        path.write_text(
            json.dumps(
                {
                    "index": 0,
                    "query": "someone-else's query",
                    "dpccp_seconds": 123.0,
                    "dpccp_classes": 1,
                }
            )
            + "\n"
        )
        measurement = run_workload(workload, FAST, checkpoint_path=path)
        assert measurement.measurements[0].dpccp_seconds != 123.0

    def test_resume_repairs_the_truncated_checkpoint(self, workload, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        run_workload(workload, FAST, checkpoint_path=path)
        content = path.read_text()
        path.write_text(content[: content.rfind("{")])
        run_workload(workload, FAST, checkpoint_path=path)
        # The recomputed record must not concatenate onto the broken tail:
        # a third run loads every record.
        assert len(load_checkpoint(path)) == 3

    def test_missing_checkpoint_file_is_fine(self, tmp_path):
        assert load_checkpoint(tmp_path / "absent.jsonl") == {}


class TestFailureCountsServiceTaxonomy:
    """retries / breaker_trips are recovery counters (ISSUE satellite)."""

    def test_recovery_counters_do_not_inflate_total(self):
        counts = FailureCounts(
            timeouts=1, errors=2, degraded=3, skipped=4,
            retries=50, breaker_trips=6,
        )
        assert counts.total == 10

    def test_as_dict_reports_the_full_taxonomy(self):
        counts = FailureCounts(timeouts=1, retries=2, breaker_trips=3)
        payload = counts.as_dict()
        assert payload == {
            "timeouts": 1,
            "errors": 0,
            "degraded": 0,
            "skipped": 0,
            "retries": 2,
            "breaker_trips": 3,
            "total_failed": 1,
        }

    def test_tally_leaves_recovery_counters_zero(self):
        counts = FailureCounts.tally(["timeout: x", "error: y"])
        assert counts.retries == 0
        assert counts.breaker_trips == 0
