"""Tests for the measurement harness."""

import pytest

from repro.bench.harness import (
    CHART_ALGORITHMS,
    PAPER_ALGORITHMS,
    AlgorithmSpec,
    NormedSummary,
    run_query_matrix,
    run_workload,
)
from repro.workload.generator import QueryGenerator

FAST = (
    AlgorithmSpec("mincut_conservative", "none"),
    AlgorithmSpec("mincut_conservative", "apcbi"),
)


class TestSpecs:
    def test_paper_matrix_has_fifteen_combinations(self):
        assert len(PAPER_ALGORITHMS) == 15

    def test_chart_subset_matches_section_vc(self):
        labels = [spec.label for spec in CHART_ALGORITHMS]
        assert labels == [
            "TDMcL", "TDMcL_APCB", "TDMcB_APCB", "TDMcB_APCBI", "TDMcC_APCBI",
        ]

    def test_display_override(self):
        spec = AlgorithmSpec("mincut_lazy", "apcb", display="custom")
        assert spec.label == "custom"


class TestNormedSummary:
    def test_of_values(self):
        summary = NormedSummary.of([1.0, 3.0, 2.0])
        assert summary.minimum == 1.0
        assert summary.maximum == 3.0
        assert summary.average == 2.0
        assert summary.count == 3

    def test_of_empty(self):
        summary = NormedSummary.of([])
        assert summary.count == 0
        assert summary.average != summary.average  # NaN


class TestRunQueryMatrix:
    def test_measures_all_algorithms(self, small_query):
        measurement = run_query_matrix(small_query, FAST)
        assert set(measurement.normed_times) == {spec.label for spec in FAST}
        assert all(v > 0 for v in measurement.normed_times.values())
        assert measurement.dpccp_classes > 0

    def test_success_counters_normalized(self, small_query):
        measurement = run_query_matrix(small_query, FAST)
        # Unpruned top-down builds exactly DPccp's classes.
        assert measurement.normed_success["TDMcC"] == pytest.approx(1.0)
        assert measurement.normed_success["TDMcC_APCBI"] <= 1.0 + 1e-9

    def test_check_costs_can_be_disabled(self, small_query):
        measurement = run_query_matrix(small_query, FAST, check_costs=False)
        assert set(measurement.normed_times) == {spec.label for spec in FAST}

    def test_config_override_flows_through(self, small_query):
        from repro.core.advancements import AdvancementConfig

        spec = AlgorithmSpec(
            "mincut_conservative",
            "apcbi",
            config=AdvancementConfig.all_off(),
            display="bare",
        )
        measurement = run_query_matrix(small_query, [spec])
        assert "bare" in measurement.normed_times


class TestRunWorkload:
    @pytest.fixture
    def workload(self):
        generator = QueryGenerator(seed=3)
        return [generator.generate("acyclic", n) for n in (5, 5, 6, 6)]

    def test_summaries(self, workload):
        measurement = run_workload(workload, FAST)
        summary = measurement.normed_time_summary("TDMcC_APCBI")
        assert summary.count == 4
        assert summary.minimum <= summary.average <= summary.maximum

    def test_by_size_buckets(self, workload):
        measurement = run_workload(workload, FAST)
        by_size = measurement.by_size("TDMcC")
        assert set(by_size) == {5, 6}

    def test_dpccp_by_size(self, workload):
        measurement = run_workload(workload, FAST)
        assert set(measurement.dpccp_by_size()) == {5, 6}

    def test_progress_callback(self, workload):
        seen = []
        run_workload(workload, FAST, progress=lambda i, n: seen.append((i, n)))
        assert seen == [(1, 4), (2, 4), (3, 4), (4, 4)]

    def test_normed_times_series(self, workload):
        measurement = run_workload(workload, FAST)
        assert len(measurement.normed_times("TDMcC")) == 4
