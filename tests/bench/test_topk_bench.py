"""The top-k rank-stability benchmark: tau math, invariants, CLI."""

import json

import pytest

from repro.bench.topk import kendall_tau, main, run_topk_benchmark

# Small enough for a unit test, big enough that every family appears.
TINY_WORKLOAD = (("chain", 6), ("star", 5), ("cycle", 6), ("clique", 5))


class TestKendallTau:
    def test_identical_orders_are_plus_one(self):
        assert kendall_tau([1, 2, 3, 4], [1, 2, 3, 4]) == 1.0

    def test_reversed_orders_are_minus_one(self):
        assert kendall_tau([1, 2, 3, 4], [4, 3, 2, 1]) == -1.0

    def test_single_swap(self):
        # One discordant pair of three: (2 - 1) / 3.
        assert kendall_tau([1, 2, 3], [2, 1, 3]) == pytest.approx(1.0 / 3.0)

    def test_degenerate_rankings_are_plus_one(self):
        assert kendall_tau([], []) == 1.0
        assert kendall_tau([7], [7]) == 1.0

    def test_mismatched_item_sets_rejected(self):
        with pytest.raises(ValueError):
            kendall_tau([1, 2], [1, 3])

    def test_symmetry(self):
        a, b = [1, 2, 3, 4, 5], [3, 1, 5, 2, 4]
        assert kendall_tau(a, b) == kendall_tau(b, a)


class TestRunTopkBenchmark:
    def test_report_shape_and_invariants(self):
        report = run_topk_benchmark(k=3, draws=2, workload=TINY_WORKLOAD)
        assert report["failures"] == []
        assert len(report["queries"]) == len(TINY_WORKLOAD)
        for entry in report["queries"]:
            assert 1 <= entry["k_retained"] <= 3
            assert entry["rank1_cost"] == entry["ranked_costs"][0]
            assert all(-1.0 <= tau <= 1.0 for tau in entry["taus"])
            assert len(entry["taus"]) == 2
        assert set(report["mean_tau_by_family"]) == {
            family for family, _ in TINY_WORKLOAD
        }

    def test_benchmark_is_seeded_deterministic(self):
        first = run_topk_benchmark(k=3, draws=2, workload=TINY_WORKLOAD)
        second = run_topk_benchmark(k=3, draws=2, workload=TINY_WORKLOAD)
        for a, b in zip(first["queries"], second["queries"]):
            assert a["ranked_costs"] == b["ranked_costs"]
            assert a["taus"] == b["taus"]

    def test_cli_writes_the_report(self, tmp_path, monkeypatch, capsys):
        out = tmp_path / "BENCH_topk.json"
        monkeypatch.setattr(
            "repro.bench.topk.DEFAULT_WORKLOAD", TINY_WORKLOAD
        )
        exit_code = main(["--out", str(out), "--k", "3", "--draws", "2"])
        report = json.loads(out.read_text(encoding="utf-8"))
        assert exit_code == 0
        assert report["failures"] == []
        assert report["benchmark"] == "topk"
        printed = capsys.readouterr().out
        assert "rank stability" in printed
