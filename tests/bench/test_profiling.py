"""Tests for the per-class enumeration profiler."""

import pytest

from repro.bench.profiling import EnumerationProfile, InstrumentedPartitioning
from repro.core.apcb import ApcbPlanGenerator
from repro.core.apcbi import ApcbiPlanGenerator
from repro.core.plangen import TopDownPlanGenerator
from repro.cost.haas import HaasCostModel
from repro.partitioning import MinCutConservative
from repro.workload.generator import QueryGenerator


@pytest.fixture
def cascade_query():
    """An fk cyclic query — the shape where APCB re-enumerates heavily."""
    return QueryGenerator(seed=5).generate("cyclic", 9, "fk")


def _profiled_run(generator_cls, query):
    instrumented = InstrumentedPartitioning(MinCutConservative())
    generator = generator_cls(query, instrumented, HaasCostModel())
    generator.run()
    return instrumented.profile


class TestInstrumentedPartitioning:
    def test_wrapping_preserves_emissions(self, small_query):
        instrumented = InstrumentedPartitioning(MinCutConservative())
        plain = list(
            MinCutConservative().partitions(
                small_query.graph, small_query.graph.all_vertices
            )
        )
        wrapped = list(
            instrumented.partitions(
                small_query.graph, small_query.graph.all_vertices
            )
        )
        assert wrapped == plain
        assert instrumented.profile.ccps[small_query.graph.all_vertices] == len(
            plain
        )

    def test_label_passthrough(self):
        instrumented = InstrumentedPartitioning(MinCutConservative())
        assert instrumented.label == "TDMcC"
        assert "profile" in instrumented.name


class TestCascadeDiagnosis:
    def test_unpruned_enumeration_is_cascade_free(self, cascade_query):
        profile = _profiled_run(TopDownPlanGenerator, cascade_query)
        assert profile.cascade_factor() == pytest.approx(1.0)
        assert profile.re_enumerated_classes() == []

    def test_apcb_re_enumerates_and_apcbi_recovers(self, cascade_query):
        """The §IV-D worst case made visible per class."""
        apcb = _profiled_run(ApcbPlanGenerator, cascade_query)
        apcbi = _profiled_run(ApcbiPlanGenerator, cascade_query)
        assert apcb.cascade_factor() > apcbi.cascade_factor()
        assert apcb.re_enumerated_classes(), "expected an APCB cascade here"

    def test_render_mentions_cascade_factor(self, cascade_query):
        profile = _profiled_run(ApcbPlanGenerator, cascade_query)
        text = profile.render(limit=3)
        assert "cascade factor" in text


class TestEnumerationProfile:
    def test_empty_profile(self):
        profile = EnumerationProfile()
        assert profile.cascade_factor() == 0.0
        assert profile.total_passes == 0
        assert "0 classes" in profile.render()

    def test_render_survives_a_pass_with_no_recorded_ccps(self):
        # Regression: a class recorded in `passes` but absent from `ccps`
        # (legacy profiles built before the atomic recording fix) used to
        # raise KeyError mid-report.
        profile = EnumerationProfile(passes={0b111: 3}, ccps={})
        text = profile.render()
        assert "0 ccps total" in text

    def test_abandoned_pass_records_both_maps(self, small_query):
        # A consumer that abandons the generator mid-pass (the budget /
        # pruning cutoff shape) must still leave the class in *both* maps.
        instrumented = InstrumentedPartitioning(MinCutConservative())
        root = small_query.graph.all_vertices
        iterator = instrumented.partitions(small_query.graph, root)
        next(iterator)
        iterator.close()
        profile = instrumented.profile
        assert profile.passes[root] == 1
        assert profile.ccps[root] == 1  # exactly what was consumed
        assert "enumeration passes" in profile.render()

    def test_zero_ccp_pass_renders_as_zero(self, small_query):
        # A pass whose inner strategy produces nothing at all must land in
        # both maps and render as 0 ccps instead of crashing.
        class _EmptyStrategy(MinCutConservative):
            def partitions(self, graph, vertex_set):
                return iter(())

        instrumented = InstrumentedPartitioning(_EmptyStrategy())
        root = small_query.graph.all_vertices
        for _ in range(2):
            assert list(instrumented.partitions(small_query.graph, root)) == []
        profile = instrumented.profile
        assert profile.passes[root] == 2
        assert profile.ccps[root] == 0
        assert "(0 ccps total)" in profile.render()
