"""The repeated-workload plan-cache benchmark and its harness hookup."""

import json

from repro.bench.harness import AlgorithmSpec, run_query_matrix, run_workload
from repro.bench.plancache import main, run_plancache_benchmark
from repro.context import PlanCache
from repro.workload.generator import QueryGenerator

# Small enough for a unit test, big enough that every family appears.
TINY_WORKLOAD = (("chain", 6), ("star", 5), ("cycle", 6), ("clique", 5))


class TestRunPlancacheBenchmark:
    def test_repeated_half_hits_every_time(self):
        report = run_plancache_benchmark(workload=TINY_WORKLOAD)
        assert report["queries"] == len(TINY_WORKLOAD)
        assert report["cold_misses"] == len(TINY_WORKLOAD)
        assert report["repeated_hits"] == len(TINY_WORKLOAD)
        assert report["repeated_hit_rate"] == 1.0

    def test_warm_results_are_cache_served_and_cost_identical(self):
        report = run_plancache_benchmark(workload=TINY_WORKLOAD)
        # memo_entries == 0 is the cache-served marker.
        assert report["warm_memo_entries"] == [0] * len(TINY_WORKLOAD)
        # The warm queries are permutations, replayed against their own
        # statistics — same optimal cost, bit for bit (hex strings, so
        # plain equality is exact and no-float-cost-eq does not apply).
        assert report["warm_costs"] == report["cold_costs"]

    def test_cli_writes_the_report(self, tmp_path, monkeypatch, capsys):
        out = tmp_path / "BENCH_plancache.json"
        monkeypatch.setattr(
            "repro.bench.plancache.DEFAULT_WORKLOAD", TINY_WORKLOAD
        )
        # The tiny workload optimizes in microseconds, so the 2x speedup
        # criterion is noisy here; the hit-rate criterion is what the
        # unit test can assert deterministically.
        exit_code = main(["--out", str(out)])
        report = json.loads(out.read_text(encoding="utf-8"))
        assert report["repeated_hit_rate"] == 1.0
        assert "repeated hit rate 100%" in capsys.readouterr().out
        if exit_code != 0:
            assert report["speedup"] < report["required_speedup"]


class TestHarnessPlanCache:
    def test_matrix_reuses_the_cache_across_repeats(self):
        query = QueryGenerator(seed=7).generate("cycle", 6)
        specs = [AlgorithmSpec("mincut_conservative", "apcbi")]
        cache = PlanCache()
        first = run_query_matrix(query, specs, plan_cache=cache)
        second = run_query_matrix(query, specs, plan_cache=cache)
        assert not first.failures and not second.failures
        # One DPccp-verified entry per config; the repeat hit it.
        assert cache.misses == 1
        assert cache.hits == 1

    def test_workload_passes_the_cache_through(self):
        generator = QueryGenerator(seed=9)
        queries = [generator.generate("chain", 5)] * 2
        specs = [AlgorithmSpec("mincut_conservative", "pcb")]
        cache = PlanCache()
        measurement = run_workload(queries, specs, plan_cache=cache)
        assert len(measurement.measurements) == 2
        assert cache.hits == 1

    def test_without_a_cache_nothing_changes(self):
        query = QueryGenerator(seed=7).generate("chain", 5)
        specs = [AlgorithmSpec("mincut_conservative", "apcbi")]
        measurement = run_query_matrix(query, specs)
        assert not measurement.failures
