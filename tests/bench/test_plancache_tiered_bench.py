"""The tiered (L1 + durable L2) plan-cache benchmark."""

import json

from repro.bench.plancache_tiered import (
    main,
    run_admission_sweep,
    run_recovery_curve,
    run_zipfian_replay,
)

# Small enough for a unit test, varied enough that admission discriminates.
TINY_SHAPES = (("chain", 5), ("star", 5), ("cycle", 6), ("chain", 8))


class TestZipfianReplay:
    def test_warm_start_is_bit_identical_and_never_enumerates(self, tmp_path):
        report = run_zipfian_replay(
            str(tmp_path), shapes=TINY_SHAPES, requests=24
        )
        assert report["violations"] == []
        assert report["entries_persisted"] == len(TINY_SHAPES)
        assert report["warm_entries"] == len(TINY_SHAPES)
        assert report["warm"]["enumerated"] == 0
        assert report["warm"]["l2_hits"] == len(TINY_SHAPES)
        # Zipf trace: repeats dominate, so the cold half already hits L1.
        assert report["cold"]["hit_rate"] > 0.5

    def test_trace_is_seed_deterministic(self, tmp_path):
        first = run_zipfian_replay(
            str(tmp_path / "a"), shapes=TINY_SHAPES, requests=24
        )
        second = run_zipfian_replay(
            str(tmp_path / "b"), shapes=TINY_SHAPES, requests=24
        )
        assert first["cold_costs"] == second["cold_costs"]
        assert first["cold"]["hit_rate"] == second["cold"]["hit_rate"]


class TestAdmissionSweep:
    def test_persisted_entries_shrink_monotonically(self, tmp_path):
        report = run_admission_sweep(str(tmp_path), shapes=TINY_SHAPES)
        assert report["violations"] == []
        persisted = [point["persisted"] for point in report["points"]]
        assert persisted[0] == len(TINY_SHAPES)
        assert persisted[-1] == 0
        assert persisted == sorted(persisted, reverse=True)
        sizes = [point["bytes"] for point in report["points"]]
        assert sizes == sorted(sizes, reverse=True)


class TestRecoveryCurve:
    def test_every_log_size_replays_fully(self, tmp_path):
        report = run_recovery_curve(str(tmp_path), sizes=(4, 16))
        assert report["violations"] == []
        assert [point["entries"] for point in report["points"]] == [4, 16]
        assert all(point["seconds"] >= 0 for point in report["points"])
        assert (
            report["points"][1]["bytes"] > report["points"][0]["bytes"]
        )


class TestMain:
    def test_cli_writes_the_report_and_exits_clean(
        self, tmp_path, monkeypatch, capsys
    ):
        out = tmp_path / "BENCH_plancache_tiered.json"
        monkeypatch.setattr(
            "repro.bench.plancache_tiered.DEFAULT_POOL_SHAPES", TINY_SHAPES
        )
        monkeypatch.setattr(
            "repro.bench.plancache_tiered.DEFAULT_LOG_SIZES", (4, 16)
        )
        assert main(["--out", str(out), "--requests", "24"]) == 0
        report = json.loads(out.read_text(encoding="utf-8"))
        assert report["violations"] == []
        assert "tiered cache:" in capsys.readouterr().out
