"""Tests for the paper-vs-measured report generator."""

import json

from repro.bench.report import CLAIMS, load_results, render_report


def _fake_table2_payload():
    def algo(avg, maximum=None, avg_s=0.5, max_f=0.1):
        return {
            "normed_time": {"min": avg / 2, "max": maximum or avg * 2, "avg": avg},
            "avg_s": avg_s,
            "max_s": 1.0,
            "avg_f": 0.05,
            "max_f": max_f,
        }

    families = {}
    for family in ("chain", "star", "cycle", "clique", "acyclic", "cyclic"):
        rows = {}
        for label in ("TDMcL", "TDMcB", "TDMcC"):
            rows[label] = algo(1.3)
            rows[f"{label}_PCB"] = algo(0.8)
            rows[f"{label}_APCB"] = algo(1.0, maximum=40.0, max_f=50.0)
            rows[f"{label}_APCBI"] = algo(
                0.3, maximum=1.2, avg_s=1.0 if family == "star" else 0.2
            )
            rows[f"{label}_APCBI_Opt"] = algo(0.25)
        families[family] = {
            "dpccp_seconds": {"min": 0.001, "max": 0.1, "avg": 0.01},
            "algorithms": rows,
            "queries": 10,
        }
    return families


class TestLoadResults:
    def test_loads_json_files(self, tmp_path):
        (tmp_path / "table2.json").write_text(json.dumps({"x": 1}))
        (tmp_path / "broken.json").write_text("{not json")
        results = load_results(tmp_path)
        assert results == {"table2": {"x": 1}}

    def test_empty_directory(self, tmp_path):
        assert load_results(tmp_path) == {}


class TestRenderReport:
    def test_without_artifacts_prompts_to_run(self, tmp_path):
        text = render_report(tmp_path)
        assert "run the experiments first" in text

    def test_with_full_artifacts(self, tmp_path):
        (tmp_path / "table2.json").write_text(json.dumps(_fake_table2_payload()))
        (tmp_path / "figure15.json").write_text(
            json.dumps({"acyclic": {"APCBI": 0.4, "APCBI_Opt": 0.35, "APCB": 1.0}})
        )
        text = render_report(tmp_path)
        assert "| Claim | Paper | Measured |" in text
        # APCB avg 1.0 vs APCBI avg 0.3 -> factor ~3.3 everywhere.
        assert "3.3" in text
        # Worst case 40x vs 1.2x.
        assert "40.0x" in text
        # Star counters pinned to 1.
        assert "1.00-1.00" in text
        # APCBI_Opt gain 12-13%.
        assert "13%" in text or "12%" in text

    def test_every_claim_has_paper_value(self):
        for headline, paper_value, extractor in CLAIMS:
            assert headline
            assert paper_value
            assert callable(extractor)
