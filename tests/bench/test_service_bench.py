"""Service-mode bench harness: percentiles, throughput, failure taxonomy."""

import json
import math

import pytest

from repro.bench.harness import FailureCounts
from repro.bench.service import (
    ServiceBenchReport,
    percentile,
    run_service_bench,
    service_failure_counts,
)
from repro.workload.generator import QueryGenerator


@pytest.fixture
def queries():
    generator = QueryGenerator(seed=17)
    return [
        ("chain-5", generator.generate("chain", 5)),
        ("star-5", generator.generate("star", 5)),
    ]


class TestPercentile:
    def test_empty_is_nan(self):
        # Regression: the old implementation returned 0.0 for an empty
        # sample set, which read as "impossibly fast", not "no data".
        assert math.isnan(percentile([], 95.0))

    def test_single_value(self):
        assert percentile([3.0], 50.0) == 3.0

    def test_interpolation(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 100.0) == 4.0
        assert percentile(values, 50.0) == pytest.approx(2.5)

    def test_order_independent(self):
        assert percentile([4.0, 1.0, 3.0, 2.0], 50.0) == pytest.approx(2.5)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)


class TestServiceFailureCounts:
    def test_builds_the_shared_taxonomy(self):
        counts = service_failure_counts(
            timeouts=1, errors=2, retries=3, breaker_trips=4
        )
        assert isinstance(counts, FailureCounts)
        assert counts.total == 3  # recovery counters excluded
        assert counts.as_dict()["retries"] == 3
        assert counts.as_dict()["breaker_trips"] == 4


class TestRunServiceBench:
    def test_bench_completes_and_reports(self, queries):
        report = run_service_bench(queries, repeats=2, workers=2)
        assert report.completed == 4
        assert report.failed == 0
        assert report.rejected == 0
        assert report.throughput > 0
        assert report.elapsed_seconds > 0
        assert report.rung_histogram.get("exact") == 4
        assert report.service_time["p95"] >= report.service_time["p50"]
        assert report.failures.total == 0

    def test_report_serializes_to_json(self, queries):
        report = run_service_bench(queries, repeats=1, workers=2)
        payload = json.loads(report.to_json())
        assert payload["completed"] == 2
        assert "retries" in payload["failures"]
        assert "breaker_trips" in payload["failures"]
        assert "p99" in payload["service_seconds"]

    def test_describe_is_human_readable(self, queries):
        report = run_service_bench(queries, repeats=1, workers=1)
        text = report.describe()
        assert "throughput" in text
        assert "rungs" in text

    def test_repeats_must_be_positive(self, queries):
        with pytest.raises(ValueError):
            run_service_bench(queries, repeats=0)

    def test_empty_report_defaults(self):
        report = ServiceBenchReport(
            requests=0, completed=0, failed=0, timeouts=0, rejected=0,
            elapsed_seconds=0.0, throughput=0.0,
        )
        assert report.as_dict()["failures"]["total_failed"] == 0

    def test_empty_percentiles_render_as_null_and_na(self):
        # NaN percentiles must not leak into JSON (no NaN literal there)
        # or into the human-readable rendering.
        report = ServiceBenchReport(
            requests=0, completed=0, failed=0, timeouts=0, rejected=0,
            elapsed_seconds=0.0, throughput=0.0,
            queue_wait={"p50": float("nan"), "p95": float("nan"),
                        "p99": float("nan"), "max": float("nan")},
        )
        payload = json.loads(report.to_json())
        assert payload["queue_wait_seconds"]["p95"] is None
        assert "p50=n/a" in report.describe()
