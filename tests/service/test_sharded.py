"""ShardedService integration: routing, crash fail-over, drain, fallback.

These tests spawn real shard processes (fork context on Linux, so spawn
cost is small); they keep shard counts and query sizes low to stay in
tier-1 time budgets.
"""

import time

import pytest

from repro.errors import (
    ServiceError,
    ServiceOverloadError,
    ServiceShutdownError,
)
from repro.resilience.optimizer import ResilientOptimizer
from repro.service.retry import RetryPolicy
from repro.service.sharded import ShardedService
from repro.service.sharded.supervisor import RespawnBackoff
from repro.telemetry import MetricRegistry, Telemetry
from repro.workload.generator import QueryGenerator


def wait_until(predicate, timeout=15.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


@pytest.fixture(scope="module")
def queries():
    generator = QueryGenerator(seed=21)
    return [
        generator.generate(family, n)
        for family, n in (("chain", 5), ("star", 5), ("clique", 4))
    ]


def make_service(**overrides):
    defaults = dict(shards=2, workers_per_shard=2, heartbeat_interval=0.05)
    defaults.update(overrides)
    return ShardedService(**defaults)


class TestServing:
    def test_round_trip_all_queries(self, queries):
        with make_service() as service:
            futures = [service.submit(query) for query in queries]
            responses = [future.result(timeout=60) for future in futures]
        assert all(response.ok for response in responses)
        assert all(response.plan is not None for response in responses)
        assert all(response.shard is not None for response in responses)

    def test_repeats_land_on_the_same_shard(self, queries):
        with make_service(shards=3) as service:
            first = service.submit(queries[0]).result(timeout=60)
            again = [
                service.submit(queries[0]).result(timeout=60)
                for _ in range(3)
            ]
        assert {response.shard for response in again} == {first.shard}

    def test_plans_match_single_process_optimizer(self, queries):
        clean = {
            index: ResilientOptimizer().optimize(query)
            for index, query in enumerate(queries)
        }
        with make_service(shards=3) as service:
            for index, query in enumerate(queries):
                response = service.submit(query).result(timeout=60)
                assert response.plan.sexpr() == clean[index].plan.sexpr()
                assert repr(response.cost) == repr(clean[index].cost)

    def test_healthz_reports_ok_when_fully_staffed(self, queries):
        with make_service() as service:
            assert wait_until(lambda: service.healthz().shards_up == 2)
            service.submit(queries[0]).result(timeout=60)
            health = service.healthz()
        assert health.status == "ok"
        assert health.healthy
        assert health.accepted == 1
        assert health.completed == 1
        assert "cluster    : ok" in health.describe()


class TestCrashFailover:
    def test_killed_shard_fails_over_and_respawns(self, queries):
        registry = MetricRegistry(enabled=True)
        with make_service(
            shards=2, telemetry=Telemetry(registry=registry)
        ) as service:
            assert wait_until(lambda: service.healthz().shards_up == 2)
            # In-flight work on every shard, then SIGKILL one of them.
            futures = [
                service.submit(query) for query in queries for _ in range(2)
            ]
            service.kill_shard(0)
            responses = [future.result(timeout=120) for future in futures]
            assert all(response.ok for response in responses)
            # The supervisor must bring shard 0 back.
            assert wait_until(
                lambda: service.healthz().shards_up == 2, timeout=30.0
            )
            health = service.healthz()
        assert health.respawns >= 1
        snapshot = health.metrics
        assert snapshot is not None
        deaths = [
            name for name in snapshot if "repro_shard_deaths_total" in name
        ]
        respawns = [
            name for name in snapshot if "repro_shard_respawns_total" in name
        ]
        assert deaths and respawns
        assert snapshot["repro_shard_cluster_shards_up"] == 2.0

    def test_all_shards_down_serves_via_fallback(self, queries):
        # Backoff long enough that no respawn lands mid-test.
        slow = RetryPolicy(max_attempts=3, base_delay=30.0, max_delay=60.0)
        with make_service(shards=2, respawn_policy=slow) as service:
            assert wait_until(lambda: service.healthz().shards_up == 2)
            service.kill_shard(0)
            service.kill_shard(1)
            assert wait_until(lambda: service.healthz().shards_up == 0)
            response = service.submit(queries[0]).result(timeout=120)
            health = service.healthz()
        assert response.ok
        assert response.shard is None  # served by the front-end ladder
        assert health.status == "down"
        assert health.fallback_served >= 1
        assert "fallback only" in health.describe()


class TestDrain:
    def test_drain_restarts_shard_and_counts(self, queries):
        with make_service() as service:
            assert wait_until(lambda: service.healthz().shards_up == 2)
            assert service.drain_shard(0, timeout=30.0)
            health = service.healthz()
            assert health.drains == 1
            # The drained slot restarts clean: no crash-respawn counted.
            assert health.respawns == 0
            assert wait_until(lambda: service.healthz().shards_up == 2)
            # Serving continued throughout.
            assert service.submit(queries[0]).result(timeout=60).ok

    def test_only_one_drain_at_a_time(self):
        with make_service(shards=3) as service:
            assert wait_until(lambda: service.healthz().shards_up == 3)
            with service._lock:
                service._handles[1].state = "draining"
            try:
                with pytest.raises(ServiceError, match="one at a time"):
                    service.drain_shard(2)
            finally:
                with service._lock:
                    service._handles[1].state = "up"

    def test_drain_unknown_or_down_shard_raises(self):
        with make_service() as service:
            with pytest.raises(ServiceError, match="no such shard"):
                service.drain_shard(9)
            with service._lock:
                service._handles[1].state = "backoff"
            try:
                with pytest.raises(ServiceError, match="only an up shard"):
                    service.drain_shard(1)
            finally:
                with service._lock:
                    service._handles[1].state = "up"


class TestAdmissionAndLifecycle:
    def test_overload_sheds_with_typed_error(self, queries):
        with make_service(max_outstanding=1) as service:
            assert wait_until(lambda: service.healthz().shards_up == 2)
            # Occupy the only admission slot without racing completion:
            # park a synthetic ticket in the table.
            from repro.service.sharded.service import _ClusterTicket

            with service._lock:
                service._tickets[999_999] = _ClusterTicket(
                    request_id=999_999,
                    query=queries[0],
                    priority=0,
                    deadline_seconds=None,
                    seed=1,
                    key="synthetic",
                    created_at=0.0,
                )
            try:
                with pytest.raises(ServiceOverloadError):
                    service.submit(queries[0])
            finally:
                with service._lock:
                    service._tickets.pop(999_999)
            assert service.healthz().rejected == 1

    def test_submit_after_shutdown_raises(self, queries):
        service = make_service().start()
        assert service.shutdown(drain=True, timeout=30.0)
        with pytest.raises(ServiceShutdownError):
            service.submit(queries[0])
        health = service.healthz()
        assert health.status == "stopped"

    def test_service_is_one_shot(self):
        service = make_service().start()
        service.shutdown(drain=True, timeout=30.0)
        with pytest.raises(ServiceShutdownError):
            service.start()

    def test_shards_validate(self):
        with pytest.raises(ValueError, match="shards"):
            ShardedService(shards=0)
        with pytest.raises(ValueError, match="heartbeat_miss_limit"):
            ShardedService(shards=1, heartbeat_miss_limit=1)


class TestRespawnBackoff:
    def test_seeded_delays_reproduce_and_reset(self):
        policy = RetryPolicy(max_attempts=4, base_delay=0.1, max_delay=2.0)
        a = RespawnBackoff(policy, seed=11)
        b = RespawnBackoff(policy, seed=11)
        first = [a.next_delay() for _ in range(6)]
        assert first == [b.next_delay() for _ in range(6)]
        assert a.consecutive_failures == 6
        a.reset()
        assert a.consecutive_failures == 0
        # Delays grow (modulo jitter floor) and cap at max_delay.
        assert max(first) <= policy.max_delay
