"""RetryPolicy: backoff schedule, seeded jitter, failure classification."""

import pytest

from repro.errors import (
    BudgetExceeded,
    CatalogError,
    CircuitOpenError,
    InjectedFaultError,
)
from repro.plans.validation import PlanValidationError
from repro.service.retry import RetryPolicy


class TestSchedule:
    def test_exponential_growth_capped(self):
        policy = RetryPolicy(
            base_delay=0.01, multiplier=2.0, max_delay=0.05, jitter=0.0
        )
        delays = [policy.delay(attempt) for attempt in range(1, 6)]
        assert delays == [0.01, 0.02, 0.04, 0.05, 0.05]

    def test_attempt_must_be_positive(self):
        with pytest.raises(ValueError):
            RetryPolicy().delay(0)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-0.1)


class TestJitter:
    def test_jitter_is_deterministic_per_seed(self):
        policy = RetryPolicy(jitter=0.5)
        first = [
            policy.delay(attempt, policy.rng_for(123))
            for attempt in range(1, 5)
        ]
        second = [
            policy.delay(attempt, policy.rng_for(123))
            for attempt in range(1, 5)
        ]
        assert first == second

    def test_distinct_seeds_give_distinct_jitter(self):
        policy = RetryPolicy(jitter=0.5)
        a = policy.delay(1, policy.rng_for(1))
        b = policy.delay(1, policy.rng_for(2))
        assert a != b

    def test_jitter_bounded_by_fraction(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=1.0, jitter=0.25)
        for seed in range(20):
            delay = policy.delay(1, policy.rng_for(seed))
            assert 0.1 <= delay <= 0.1 * 1.25

    def test_jitter_never_exceeds_max_delay(self):
        # Regression: jitter used to be applied after the cap, so a
        # capped delay could still be inflated past max_delay.
        policy = RetryPolicy(
            base_delay=0.1, multiplier=2.0, max_delay=0.1, jitter=1.0
        )
        for seed in range(50):
            for attempt in range(1, 6):
                delay = policy.delay(attempt, policy.rng_for(seed))
                assert delay <= policy.max_delay

    def test_zero_jitter_ignores_rng(self):
        policy = RetryPolicy(base_delay=0.02, jitter=0.0)
        assert policy.delay(1, policy.rng_for(7)) == 0.02


class TestClassification:
    def test_injected_faults_are_transient(self):
        assert RetryPolicy.is_transient(InjectedFaultError("boom"))

    def test_catalog_loss_is_transient(self):
        assert RetryPolicy.is_transient(CatalogError("stats missing"))

    def test_open_circuit_is_transient(self):
        assert RetryPolicy.is_transient(CircuitOpenError("cost_model", 0.1))

    def test_budget_exhaustion_is_permanent(self):
        assert not RetryPolicy.is_transient(BudgetExceeded("out of time"))

    def test_validation_failure_is_permanent(self):
        assert not RetryPolicy.is_transient(PlanValidationError("bad plan"))

    def test_generic_errors_are_permanent(self):
        assert not RetryPolicy.is_transient(ValueError("nope"))
