"""Consistent-hash router: determinism, affinity, minimal movement."""

import pytest

from repro.context.fingerprint import fingerprint
from repro.service.sharded.router import ConsistentHashRouter
from repro.workload.generator import QueryGenerator


def keys(count: int, seed: int = 3) -> list:
    generator = QueryGenerator(seed=seed)
    out = []
    for index in range(count):
        family = ("chain", "star", "clique")[index % 3]
        out.append(
            fingerprint(generator.generate(family, 4 + index % 4)).key
        )
    return out


class TestRingConstruction:
    def test_rejects_empty_and_duplicate_ids(self):
        with pytest.raises(ValueError, match="at least one shard"):
            ConsistentHashRouter([])
        with pytest.raises(ValueError, match="duplicate"):
            ConsistentHashRouter([0, 1, 1])
        with pytest.raises(ValueError, match="virtual_nodes"):
            ConsistentHashRouter([0], virtual_nodes=0)

    def test_two_instances_route_identically(self):
        a = ConsistentHashRouter(range(4))
        b = ConsistentHashRouter(range(4))
        for key in keys(30):
            assert a.route(key, alive=range(4)) == b.route(key, alive=range(4))

    def test_preference_is_a_permutation_of_all_shards(self):
        router = ConsistentHashRouter(range(5))
        for key in keys(20):
            order = router.preference(key)
            assert sorted(order) == [0, 1, 2, 3, 4]


class TestAffinity:
    def test_isomorphic_queries_share_a_shard(self):
        # Same generator seed -> same query -> same fingerprint key: the
        # warm-cache property the router exists for.
        router = ConsistentHashRouter(range(3))
        q1 = QueryGenerator(seed=5).generate("star", 6)
        q2 = QueryGenerator(seed=5).generate("star", 6)
        assert router.key_for(q1) == router.key_for(q2)
        assert router.route_query(q1, alive=range(3)) == router.route_query(
            q2, alive=range(3)
        )

    def test_load_spreads_across_shards(self):
        router = ConsistentHashRouter(range(4))
        hits = {shard: 0 for shard in range(4)}
        for key in keys(60):
            hits[router.route(key, alive=range(4))] += 1
        # Virtual nodes keep every shard in play for a mixed pool.
        assert all(count > 0 for count in hits.values()), hits


class TestMovement:
    def test_only_dead_shards_keys_move(self):
        router = ConsistentHashRouter(range(4))
        pool = keys(60)
        before = {key: router.route(key, alive=range(4)) for key in pool}
        after = {key: router.route(key, alive=[0, 1, 3]) for key in pool}
        for key in pool:
            if before[key] != 2:
                assert after[key] == before[key], (
                    "a key not owned by the dead shard moved"
                )
            else:
                assert after[key] in (0, 1, 3)

    def test_keys_come_home_after_respawn(self):
        router = ConsistentHashRouter(range(3))
        pool = keys(30)
        home = {key: router.route(key, alive=range(3)) for key in pool}
        # Kill shard 1, then bring it back: routing is memoryless, so
        # the original assignment is restored exactly.
        for key in pool:
            router.route(key, alive=[0, 2])
        assert {
            key: router.route(key, alive=range(3)) for key in pool
        } == home

    def test_exclude_skips_but_alive_governs(self):
        router = ConsistentHashRouter(range(3))
        key = keys(1)[0]
        first = router.route(key, alive=range(3))
        second = router.route(key, alive=range(3), exclude={first})
        assert second is not None and second != first
        assert router.route(key, alive=[first], exclude={first}) is None
        assert router.route(key, alive=[]) is None
