"""CircuitBreaker: the three-state machine, driven by a manual clock."""

import threading

import pytest

from repro.service.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerBoard,
    CircuitBreaker,
    ManualClock,
)


def make(clock, **overrides):
    settings = dict(
        failure_threshold=3,
        cooldown_seconds=1.0,
        half_open_probes=1,
        close_threshold=1,
        clock=clock,
    )
    settings.update(overrides)
    return CircuitBreaker("cost_model", **settings)


class TestClosed:
    def test_starts_closed_and_allows(self):
        breaker = make(ManualClock())
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_consecutive_failures_trip(self):
        breaker = make(ManualClock())
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.trips == 1

    def test_success_resets_the_failure_streak(self):
        breaker = make(ManualClock())
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED  # streak broken, no trip

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            make(ManualClock(), failure_threshold=0)
        with pytest.raises(ValueError):
            make(ManualClock(), cooldown_seconds=-1.0)
        with pytest.raises(ValueError):
            make(ManualClock(), half_open_probes=0)


class TestOpen:
    def test_open_fast_fails_until_cooldown(self):
        clock = ManualClock()
        breaker = make(clock)
        for _ in range(3):
            breaker.record_failure()
        assert not breaker.allow()
        assert breaker.retry_after() == pytest.approx(1.0)
        clock.advance(0.5)
        assert not breaker.allow()
        assert breaker.retry_after() == pytest.approx(0.5)

    def test_cooldown_moves_to_half_open(self):
        clock = ManualClock()
        breaker = make(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(1.0)
        assert breaker.state == HALF_OPEN
        assert breaker.retry_after() == 0.0


class TestHalfOpen:
    def tripped(self, clock, **overrides):
        breaker = make(clock, **overrides)
        for _ in range(breaker.failure_threshold):
            breaker.record_failure()
        clock.advance(breaker.cooldown_seconds)
        return breaker

    def test_admits_limited_probes(self):
        clock = ManualClock()
        breaker = self.tripped(clock, half_open_probes=2)
        assert breaker.allow()
        assert breaker.allow()
        assert not breaker.allow()  # both probe slots taken

    def test_probe_success_closes(self):
        clock = ManualClock()
        breaker = self.tripped(clock)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_close_threshold_requires_streak(self):
        clock = ManualClock()
        breaker = self.tripped(clock, close_threshold=2, half_open_probes=2)
        breaker.allow()
        breaker.record_success()
        assert breaker.state == HALF_OPEN
        breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED

    def test_release_probe_returns_an_unused_slot(self):
        clock = ManualClock()
        breaker = self.tripped(clock)
        assert breaker.allow()
        assert not breaker.allow()  # the single probe slot is taken
        breaker.release_probe()  # admitted call aborted before running
        assert breaker.allow()  # the slot is available again
        assert breaker.state == HALF_OPEN  # releasing is not an outcome

    def test_release_probe_outside_half_open_is_a_no_op(self):
        breaker = make(ManualClock())
        breaker.release_probe()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens(self):
        clock = ManualClock()
        breaker = self.tripped(clock)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.trips == 2
        # The new open period starts at the re-trip.
        assert breaker.retry_after() == pytest.approx(1.0)


class TestTrace:
    def test_full_cycle_trace(self):
        clock = ManualClock()
        breaker = make(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(1.0)
        breaker.allow()
        breaker.record_success()
        assert breaker.trace() == [
            "cost_model@3: closed -> open",
            "cost_model@3: open -> half_open",
            "cost_model@4: half_open -> closed",
        ]

    def test_trace_is_reproducible_for_same_outcome_sequence(self):
        outcomes = [False, False, False, True, False, False, False, True]

        def run():
            clock = ManualClock()
            breaker = make(clock)
            for success in outcomes:
                if breaker.allow():
                    if success:
                        breaker.record_success()
                    else:
                        breaker.record_failure()
                else:
                    clock.advance(breaker.retry_after())
            return breaker.trace()

        assert run() == run()

    def test_snapshot_carries_state_and_trace(self):
        breaker = make(ManualClock())
        for _ in range(3):
            breaker.record_failure()
        snapshot = breaker.snapshot()
        assert snapshot["state"] == OPEN
        assert snapshot["trips"] == 1
        assert snapshot["transitions"] == ["cost_model@3: closed -> open"]


class TestThreadSafety:
    def test_concurrent_failures_trip_exactly_once(self):
        breaker = make(ManualClock(), failure_threshold=8)
        barrier = threading.Barrier(8)

        def fail():
            barrier.wait()
            breaker.record_failure()

        threads = [threading.Thread(target=fail) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert breaker.state == OPEN
        assert breaker.trips == 1


class TestManualClock:
    def test_advance_and_sleep(self):
        clock = ManualClock(start=5.0)
        assert clock() == 5.0
        clock.advance(1.5)
        clock.sleep(0.5)
        assert clock() == 7.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            ManualClock().advance(-1.0)

    def test_sleep_clamps_negative_to_zero(self):
        clock = ManualClock()
        clock.sleep(-3.0)
        assert clock() == 0.0


class TestBoard:
    def test_breakers_are_keyed_and_cached(self):
        board = BreakerBoard(clock=ManualClock())
        first = board.breaker("cost_model")
        assert board.breaker("cost_model") is first
        board.breaker("catalog")
        assert board.components() == ["catalog", "cost_model"]

    def test_total_trips_and_merged_trace(self):
        clock = ManualClock()
        board = BreakerBoard(failure_threshold=1, clock=clock)
        board.breaker("cost_model").record_failure()
        board.breaker("catalog").record_failure()
        assert board.total_trips == 2
        trace = board.trace()
        assert "catalog@1: closed -> open" in trace
        assert "cost_model@1: closed -> open" in trace

    def test_snapshot_per_component(self):
        board = BreakerBoard(failure_threshold=1, clock=ManualClock())
        board.breaker("catalog").record_failure()
        snapshot = board.snapshot()
        assert snapshot["catalog"]["state"] == OPEN
