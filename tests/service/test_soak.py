"""Chaos soak: seeded schedules, whole-run assertions, replay determinism."""

import json
import threading

import pytest

from repro.service.soak import (
    ChaosPlant,
    SoakReport,
    build_query_pool,
    main,
    run_sharded_soak,
    run_soak,
)
from repro.service.server import OptimizeRequest
from repro.workload.generator import QueryGenerator


@pytest.fixture
def request_zero():
    query = QueryGenerator(seed=9).generate("chain", 5)
    return OptimizeRequest(query=query, request_id=0, seed=424242)


class TestChaosPlant:
    def test_schedule_is_deterministic(self, request_zero):
        def schedule():
            plant = ChaosPlant(seed=3, rate=0.5)
            return [
                repr(plant(request_zero, attempt)) for attempt in range(16)
            ]

        assert schedule() == schedule()

    def test_rate_zero_never_poisons(self, request_zero):
        plant = ChaosPlant(seed=3, rate=0.0)
        assert all(plant(request_zero, a) is None for a in range(32))

    def test_rate_one_always_poisons(self, request_zero):
        plant = ChaosPlant(seed=3, rate=1.0)
        assert all(plant(request_zero, a) is not None for a in range(8))

    def test_distinct_attempts_draw_fresh_coins(self, request_zero):
        # A poisoned first attempt does not force a poisoned second one.
        plant = ChaosPlant(seed=0, rate=0.5)
        decisions = {plant(request_zero, a) is None for a in range(64)}
        assert decisions == {True, False}

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ChaosPlant(rate=1.5)
        with pytest.raises(ValueError):
            ChaosPlant(kinds=("raise", "meteor"))

    def test_scheduled_counts_survive_concurrent_calls(self, request_zero):
        # Workers call the plant concurrently; rate=1.0 schedules one
        # fault per call, so the per-kind tallies must sum exactly.
        plant = ChaosPlant(seed=3, rate=1.0)
        per_thread, threads = 50, 4

        def schedule(base):
            for offset in range(per_thread):
                request = OptimizeRequest(
                    query=request_zero.query,
                    request_id=base + offset,
                    seed=base + offset,
                )
                plant(request, 0)

        workers = [
            threading.Thread(target=schedule, args=(index * per_thread,))
            for index in range(threads)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert sum(plant.scheduled.values()) == per_thread * threads

    def test_armed_attempt_reports_injections(self, request_zero):
        from repro.cost.haas import HaasCostModel
        from repro.cost.statistics import StatisticsProvider
        from repro.errors import InjectedFaultError

        plant = ChaosPlant(seed=3, rate=1.0, kinds=("raise",))
        attempt = plant(request_zero, 0)
        assert attempt is not None and attempt.kind == "raise"
        factory = attempt.cost_model_factory(HaasCostModel)
        provider = StatisticsProvider(request_zero.query)
        left, right = provider.stats(0b01), provider.stats(0b10)
        with attempt:
            model = factory()
            with pytest.raises(InjectedFaultError):
                for _ in range(32):  # fire past the seeded warm-up
                    model.join_cost(left, right)
        assert sum(attempt.injected.values()) >= 1


class TestQueryPool:
    def test_pool_is_deterministic(self):
        first = [key for key, _ in build_query_pool(seed=5, pool_size=6)]
        second = [key for key, _ in build_query_pool(seed=5, pool_size=6)]
        assert first == second

    def test_pool_mixes_families(self):
        pool = build_query_pool(seed=5, pool_size=6)
        families = {key.split("-")[0] for key, _ in pool}
        assert families == {"chain", "star", "clique"}

    def test_pool_respects_size_bounds(self):
        pool = build_query_pool(
            seed=5, pool_size=4, min_relations=4, max_relations=5
        )
        for _, query in pool:
            assert 4 <= query.graph.n_vertices <= 5

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            build_query_pool(seed=0, pool_size=0)
        with pytest.raises(ValueError):
            build_query_pool(seed=0, min_relations=9, max_relations=5)


class TestRunSoak:
    def soak(self, **overrides):
        settings = dict(
            seconds=30.0,
            seed=7,
            rate=0.3,
            workers=2,
            pool_size=6,
            min_relations=4,
            max_relations=6,
            max_requests=18,
        )
        settings.update(overrides)
        return run_soak(**settings)

    def test_short_soak_passes_every_assertion(self):
        report = self.soak()
        assert report.passed, report.violations
        assert report.accepted == report.submitted - report.rejected
        assert report.completed == report.accepted
        assert report.failed == 0
        assert report.timeouts == 0
        assert report.invalid_plans == 0
        assert report.replay_mismatches == 0
        assert report.unhandled_worker_errors == 0

    def test_chaos_actually_fired(self):
        report = self.soak(rate=0.8, max_requests=12)
        assert report.passed, report.violations
        assert report.injected_faults > 0
        assert sum(report.scheduled_chaos.values()) > 0

    def test_single_worker_run_is_fully_reproducible(self):
        first = self.soak(workers=1, max_requests=10)
        second = self.soak(workers=1, max_requests=10)
        assert first.passed and second.passed
        assert first.breaker_trace == second.breaker_trace
        assert first.rung_histogram == second.rung_histogram
        assert first.scheduled_chaos == second.scheduled_chaos
        assert first.retries == second.retries

    def test_report_serializes_to_json(self):
        report = self.soak(max_requests=6, replay=False)
        payload = json.loads(json.dumps(report.as_dict()))
        assert payload["passed"] is True
        assert "failures" in payload
        assert payload["failures"]["retries"] == report.retries
        assert payload["failures"]["breaker_trips"] == report.breaker_trips

    def test_violations_flip_passed(self):
        report = SoakReport(seconds=1.0, seed=0, rate=0.0, workers=1)
        assert report.passed
        report.violations.append("synthetic")
        assert not report.passed
        assert report.as_dict()["passed"] is False

    def test_traced_soak_replays_with_zero_mismatches(self, tmp_path):
        # Telemetry determinism under chaos + concurrency: an armed soak
        # must still replay bit-identically against the disarmed
        # single-threaded baseline, and the trace tree must contain the
        # full request -> attempt -> ladder_rung -> enumerate hierarchy.
        from repro.telemetry import Telemetry, Tracer, TraceSink

        trace_path = tmp_path / "soak_trace.jsonl"
        sink = TraceSink(trace_path)
        telemetry = Telemetry(tracer=Tracer(sink=sink))
        report = self.soak(max_requests=10, telemetry=telemetry)
        sink.close()
        assert report.passed, report.violations
        assert report.replay_mismatches == 0
        assert report.span_summary  # per-rung latency tables present
        roots = [
            json.loads(line)
            for line in trace_path.read_text().splitlines()
        ]
        assert roots and all(root["name"] == "request" for root in roots)
        names = set()
        for root in roots:
            stack = [root]
            while stack:
                node = stack.pop()
                names.add(node["name"])
                stack.extend(node.get("children", []))
        assert {"request", "attempt", "ladder_rung", "enumerate"} <= names


class TestMain:
    def test_cli_smoke_passes_and_writes_json(self, tmp_path, capsys):
        out = tmp_path / "soak.json"
        code = main(
            [
                "--seconds", "30",
                "--seed", "7",
                "--rate", "0.3",
                "--workers", "2",
                "--pool", "4",
                "--min-relations", "4",
                "--max-relations", "5",
                "--max-requests", "8",
                "--json", str(out),
                "--quiet",
            ]
        )
        assert code == 0
        assert "soak PASSED" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert payload["passed"] is True

    def test_kill_shards_without_shards_is_an_error(self, capsys):
        assert main(["--kill-shards", "2"]) == 2
        assert "requires --shards" in capsys.readouterr().err

    def test_store_flags_without_shards_are_an_error(self, capsys):
        assert main(["--store-dir", "/tmp/x"]) == 2
        assert "require --shards" in capsys.readouterr().err
        assert main(["--kill-during-write"]) == 2
        assert "require --shards" in capsys.readouterr().err


class TestRunShardedSoak:
    def sharded(self, **overrides):
        settings = dict(
            seconds=60.0,
            seed=7,
            rate=0.2,
            shards=2,
            workers_per_shard=2,
            pool_size=4,
            min_relations=4,
            max_relations=5,
            max_requests=24,
        )
        settings.update(overrides)
        return run_sharded_soak(**settings)

    def test_short_sharded_soak_passes(self):
        report = self.sharded()
        assert report.passed, report.violations
        assert report.completed == report.accepted
        assert report.lost == 0
        assert report.replay_checked > 0
        assert report.replay_mismatches == 0
        assert report.cluster is not None
        # Work actually spread over real shard processes.
        served_by_shards = {
            key: count
            for key, count in report.shard_histogram.items()
            if key != "fallback"
        }
        assert sum(served_by_shards.values()) > 0

    def test_kill_shards_mode_meets_the_loss_contract(self):
        report = self.sharded(kill_shards=2, max_requests=36)
        assert report.passed, report.violations
        assert len(report.kills) == 2
        assert report.lost == 0
        assert report.failed == 0
        assert report.replay_mismatches == 0
        # The deaths must be visible in supervision telemetry.
        assert report.respawns >= 1 or report.fallback_served >= 1
        assert report.cluster["respawns"] == report.respawns

    def test_sharded_report_serializes_to_json(self):
        report = self.sharded(max_requests=6, replay=False)
        payload = json.loads(json.dumps(report.as_dict()))
        assert payload["passed"] is True
        assert payload["config"]["shards"] == 2
        assert "resilience" in payload and "kills" in payload
        assert "sharded soak PASSED" in report.describe()

    def test_store_dir_records_a_store_section(self, tmp_path):
        report = self.sharded(store_dir=str(tmp_path), max_requests=16)
        assert report.passed, report.violations
        assert report.store is not None
        assert report.store["corrupt_replays"] == 0
        assert report.store["warm_mismatches"] == 0
        assert sorted(report.store["fail_open"]) == sorted(
            ["raise", "torn", "bitflip", "stale_epoch"]
        )
        assert all(
            cert["certified"] for cert in report.store["fail_open"].values()
        )
        assert "store" in json.dumps(report.as_dict())
        assert "store      :" in report.describe()

    def test_kill_during_write_chaos_meets_the_contract(self, tmp_path):
        report = self.sharded(
            kill_shards=2,
            kill_during_write=True,
            store_dir=str(tmp_path),
            max_requests=36,
        )
        assert report.passed, report.violations
        assert len(report.kills) == 2
        assert report.lost == 0
        assert report.store["kill_during_write"] is True
        # The crash-safety contract: whatever instant the SIGKILLs
        # landed, every surviving segment replays without corruption
        # and warm hits are bit-identical to cold optimization.
        assert report.store["corrupt_replays"] == 0
        assert report.store["warm_mismatches"] == 0

    def test_kill_during_write_requires_a_store_dir(self):
        with pytest.raises(ValueError, match="store_dir"):
            self.sharded(kill_shards=2, kill_during_write=True)
