"""AdmissionQueue: bounds, priority order, shedding, shutdown semantics."""

import threading

import pytest

from repro.errors import ServiceOverloadError, ServiceShutdownError
from repro.service.queue import DEFAULT_QUEUE_CAPACITY, AdmissionQueue


class TestAdmission:
    def test_put_get_roundtrip(self):
        queue = AdmissionQueue(capacity=4)
        queue.put("a")
        queue.put("b")
        assert queue.get() == "a"
        assert queue.get() == "b"

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            AdmissionQueue(capacity=0)

    def test_default_capacity(self):
        assert AdmissionQueue().capacity == DEFAULT_QUEUE_CAPACITY

    def test_full_queue_sheds_deterministically(self):
        queue = AdmissionQueue(capacity=2)
        queue.put("a")
        queue.put("b")
        with pytest.raises(ServiceOverloadError) as caught:
            queue.put("c")
        assert caught.value.queue_depth == 2
        assert caught.value.capacity == 2
        assert queue.rejected == 1
        # Shedding never blocks and never grows the queue.
        assert len(queue) == 2

    def test_rejection_counter_accumulates(self):
        queue = AdmissionQueue(capacity=1)
        queue.put("a")
        for _ in range(3):
            with pytest.raises(ServiceOverloadError):
                queue.put("x")
        assert queue.rejected == 3

    def test_high_water_tracks_deepest_backlog(self):
        queue = AdmissionQueue(capacity=8)
        for item in range(5):
            queue.put(item)
        for _ in range(5):
            queue.get()
        queue.put("later")
        assert queue.high_water == 5


class TestOrdering:
    def test_higher_priority_dequeues_first(self):
        queue = AdmissionQueue(capacity=8)
        queue.put("low", priority=0)
        queue.put("high", priority=9)
        queue.put("mid", priority=5)
        assert [queue.get() for _ in range(3)] == ["high", "mid", "low"]

    def test_fifo_within_a_priority_level(self):
        queue = AdmissionQueue(capacity=8)
        for item in ("first", "second", "third"):
            queue.put(item, priority=1)
        assert [queue.get() for _ in range(3)] == ["first", "second", "third"]

    def test_equal_priority_never_compares_payloads(self):
        # Items need not be orderable; the sequence number breaks ties.
        queue = AdmissionQueue(capacity=4)
        queue.put(object(), priority=3)
        queue.put(object(), priority=3)
        assert queue.get() is not None
        assert queue.get() is not None


class TestShutdown:
    def test_put_after_close_raises_shutdown(self):
        queue = AdmissionQueue(capacity=4)
        queue.close()
        with pytest.raises(ServiceShutdownError):
            queue.put("late")

    def test_closed_empty_queue_returns_none(self):
        queue = AdmissionQueue(capacity=4)
        queue.close()
        assert queue.get() is None

    def test_close_still_drains_backlog(self):
        queue = AdmissionQueue(capacity=4)
        queue.put("pending")
        queue.close()
        assert queue.get() == "pending"
        assert queue.get() is None

    def test_get_timeout_returns_none(self):
        queue = AdmissionQueue(capacity=4)
        assert queue.get(timeout=0.01) is None

    def test_close_wakes_blocked_getter(self):
        queue = AdmissionQueue(capacity=4)
        results = []

        def getter():
            results.append(queue.get(timeout=5.0))

        thread = threading.Thread(target=getter)
        thread.start()
        queue.close()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert results == [None]

    def test_drain_pending_empties_in_priority_order(self):
        queue = AdmissionQueue(capacity=8)
        queue.put("low", priority=0)
        queue.put("high", priority=7)
        queue.close()
        assert queue.drain_pending() == ["high", "low"]
        assert len(queue) == 0

    def test_get_timeout_is_a_single_monotonic_deadline(self):
        # Regression: spurious condition wakeups must not extend the wait
        # past the requested timeout.  The stub condition wakes spuriously
        # (returns without an item) while an injectable clock advances;
        # the old code re-armed the *full* timeout after every wakeup, so
        # the requested timeouts would never shrink and the call could
        # wait arbitrarily long.
        now = [0.0]
        queue = AdmissionQueue(capacity=4, clock=lambda: now[0])

        class SpuriousCondition:
            def __init__(self):
                self.requested = []

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

            def wait(self, timeout=None):
                self.requested.append(timeout)
                now[0] += 0.4  # time passes; still no item: spurious wake
                return True

            def notify(self):
                pass

            def notify_all(self):
                pass

        condition = SpuriousCondition()
        queue._not_empty = condition
        assert queue.get(timeout=1.0) is None
        # Three wakeups at t=0.4, 0.8, 1.2 exhaust the 1.0s deadline; the
        # remaining time shrinks monotonically instead of resetting.
        assert condition.requested == pytest.approx([1.0, 0.6, 0.2])
        assert now[0] == pytest.approx(1.2)

    def test_get_with_injected_clock_already_past_deadline(self):
        queue = AdmissionQueue(capacity=4, clock=lambda: 100.0)
        assert queue.get(timeout=0.0) is None

    def test_snapshot_reports_state(self):
        queue = AdmissionQueue(capacity=3)
        queue.put("a")
        snapshot = queue.snapshot()
        assert snapshot["depth"] == 1
        assert snapshot["capacity"] == 3
        assert snapshot["closed"] is False
