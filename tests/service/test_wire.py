"""Wire-format round-trip tests: every field survives a real pipe.

The sharded tier's whole correctness story crosses one multiprocessing
pipe as pickled dataclasses, so these tests send each message type
through a *real* duplex pipe (not just ``pickle.loads(pickle.dumps(x))``
— connection framing and the spawn-context pickler are part of the
contract) and compare **every dataclass field by introspection**.  Using
``dataclasses.fields`` rather than a hand-written field list means a
field added to a message type later cannot silently stop round-tripping:
it is compared here automatically the moment it exists.
"""

import dataclasses
import multiprocessing

import pytest

from repro.query import Query
from repro.resilience.optimizer import (
    DegradationReport,
    ResilientOptimizer,
    RungAttempt,
)
from repro.service.server import OptimizeRequest, OptimizeResponse
from repro.service.sharded.wire import (
    Drained,
    DrainCommand,
    Heartbeat,
    HealthProbe,
    Hello,
    ShutdownCommand,
    WireRequest,
    WireResponse,
    WireShed,
    strip_response,
)
from repro.workload.generator import QueryGenerator


@pytest.fixture(scope="module")
def query() -> Query:
    return QueryGenerator(seed=13).generate("star", 5)


@pytest.fixture(scope="module")
def resilient_result(query):
    # A real optimization result: the richest payload the wire carries.
    return ResilientOptimizer().optimize(query)


def pipe_round_trip(message):
    """Send ``message`` through a real duplex multiprocessing pipe."""
    parent, child = multiprocessing.Pipe(duplex=True)
    try:
        parent.send(message)
        assert child.poll(5.0), "message never arrived on the pipe"
        return child.recv()
    finally:
        parent.close()
        child.close()


def assert_fields_equal(received, original, *, skip=()):
    """Compare every dataclass field, recursing into nested dataclasses.

    ``skip`` names fields deliberately excluded from the wire contract
    (``strip_response`` drops them before sending).
    """
    assert type(received) is type(original)
    field_names = [f.name for f in dataclasses.fields(original)]
    for name in field_names:
        if name in skip:
            continue
        got = getattr(received, name)
        want = getattr(original, name)
        if dataclasses.is_dataclass(want) and not isinstance(want, type):
            assert_fields_equal(got, want)
        elif isinstance(want, list) and want and dataclasses.is_dataclass(want[0]):
            assert len(got) == len(want), f"field {name!r} changed length"
            for got_item, want_item in zip(got, want):
                assert_fields_equal(got_item, want_item)
        else:
            assert got == want, (
                f"field {name!r} did not survive the pipe: "
                f"got {got!r}, want {want!r}"
            )


class TestRequestSide:
    def test_wire_request_round_trips_every_field(self, query):
        request = WireRequest(
            request_id=41,
            query=query,
            priority=2,
            deadline_seconds=1.25,
            seed=987_654_321,
        )
        received = pipe_round_trip(request)
        assert_fields_equal(received, request, skip=("query",))
        # Query has no __eq__; the canonical fingerprint is its identity.
        from repro.context.fingerprint import fingerprint

        assert fingerprint(received.query).key == fingerprint(query).key

    def test_optimize_request_round_trips_every_field(self, query):
        request = OptimizeRequest(
            query=query,
            request_id=7,
            priority=-3,
            deadline_seconds=0.5,
            seed=1_000_003,
        )
        received = pipe_round_trip(request)
        assert_fields_equal(received, request, skip=("query",))

    def test_control_messages_round_trip(self):
        for message in (
            DrainCommand(),
            ShutdownCommand(drain=False),
            HealthProbe(),
        ):
            received = pipe_round_trip(message)
            assert_fields_equal(received, message)


class TestResponseSide:
    def test_response_with_full_degradation_report(self, query):
        report = DegradationReport(
            rung="heuristic:goo",
            attempts=[
                RungAttempt(rung="exact", status="failed", detail="nan cost"),
                RungAttempt(rung="heuristic:ikkbz", status="failed"),
                RungAttempt(rung="heuristic:goo", status="ok"),
            ],
            budget={"cost_evaluations": 100, "used": 40},
            budget_exceeded="cost_evaluations",
            chosen_cost=123.5,
            fallback_cost=130.0,
        )
        response = OptimizeResponse(
            request_id=41,
            status="ok",
            cost=123.5,
            rung="heuristic:goo",
            degraded=True,
            attempts=3,
            retries=2,
            breaker_waits=1,
            queue_wait_seconds=0.25,
            service_seconds=1.5,
            injected={"cost_model": 2, "catalog": 1},
            error=None,
            shard=2,
        )
        envelope = WireResponse(shard_id=2, request_id=41, response=response)
        received = pipe_round_trip(envelope)
        assert received.shard_id == 2
        assert received.request_id == 41
        assert_fields_equal(
            received.response, response, skip=("plan", "result")
        )
        # The report rides inside the result; check it alone too.
        assert_fields_equal(pipe_round_trip(report), report)

    def test_real_result_survives_stripped(self, query, resilient_result):
        """A genuine ResilientResult crosses the pipe bit-identically
        (minus the deliberately stripped context/exact envelopes)."""
        response = OptimizeResponse(
            request_id=9,
            status="ok",
            plan=resilient_result.plan,
            cost=resilient_result.cost,
            rung=resilient_result.rung,
            result=resilient_result,
            shard=0,
        )
        stripped = strip_response(response)
        assert stripped.result.context is None
        assert stripped.result.exact is None
        received = pipe_round_trip(
            WireResponse(shard_id=0, request_id=9, response=stripped)
        )
        got = received.response
        assert got.plan.sexpr() == resilient_result.plan.sexpr()
        assert repr(got.cost) == repr(resilient_result.cost)
        assert_fields_equal(
            got.result.report, resilient_result.report
        )
        assert_fields_equal(
            got.result,
            stripped.result,
            skip=("plan", "query", "stats", "report"),
        )
        assert got.result.stats.as_dict() == resilient_result.stats.as_dict()

    def test_strip_response_touches_nothing_else(self, resilient_result):
        """strip_response drops exactly {context, exact} and no other
        field — enumerated by introspection so a new ResilientResult
        field joins the wire contract by default."""
        response = OptimizeResponse(
            request_id=1, status="ok", result=resilient_result
        )
        stripped = strip_response(response)
        for field in dataclasses.fields(stripped.result):
            value = getattr(stripped.result, field.name)
            if field.name in ("context", "exact"):
                assert value is None
            else:
                assert value is getattr(resilient_result, field.name)

    def test_shard_side_messages_round_trip(self):
        heartbeat = Heartbeat(
            shard_id=3,
            sequence=17,
            health={"status": "ok", "workers_alive": 2},
            breaker_trace=[
                "cost_model: closed -> open @0.10",
                "cost_model: open -> half_open @0.20",
            ],
        )
        for message in (
            Hello(shard_id=3, pid=4242),
            heartbeat,
            WireShed(shard_id=3, request_id=12, queue_depth=64, capacity=64),
            Drained(shard_id=3, served=120),
        ):
            received = pipe_round_trip(message)
            assert_fields_equal(received, message)
