"""OptimizationService end-to-end: serving, shedding, retrying, breaking."""

import threading
from concurrent.futures import CancelledError

import pytest

from repro.context.plancache import PlanCache
from repro.errors import ServiceOverloadError, ServiceShutdownError
from repro.plans.validation import check_finite, validate_plan
from repro.resilience.budget import Budget
from repro.resilience.faults import FaultInjector
from repro.resilience.optimizer import ResilientOptimizer
from repro.service.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerBoard,
    ManualClock,
)
from repro.service.retry import RetryPolicy
from repro.service.server import OptimizationService
from repro.service.soak import ChaosAttempt
from repro.workload.generator import QueryGenerator


@pytest.fixture
def query():
    return QueryGenerator(seed=11).generate("chain", 6)


@pytest.fixture
def star():
    return QueryGenerator(seed=12).generate("star", 6)


def make_service(**overrides):
    settings = dict(
        workers=2,
        retry_policy=RetryPolicy(base_delay=0.001, max_delay=0.01),
    )
    settings.update(overrides)
    return OptimizationService(**settings)


class StallingChaos:
    """A chaos hook that parks the worker until released (never injects).

    ``started`` lets tests wait until a worker is actually parked, so
    backlog-shape assertions (priority order, queue depth) are race-free.
    """

    def __init__(self):
        self.release = threading.Event()
        self.started = threading.Event()

    def __call__(self, request, attempt):
        self.started.set()
        self.release.wait(timeout=10.0)
        return None


class PoisonFirstAttempts:
    """Poison the first ``n`` attempts of every request with one fault kind."""

    def __init__(self, n=1, kind="raise"):
        self.n = n
        self.kind = kind

    def __call__(self, request, attempt):
        if attempt >= self.n:
            return None
        injector = FaultInjector(seed=request.seed + attempt, rate=1.0)
        return ChaosAttempt(injector, self.kind)


class TestServing:
    def test_returns_a_validated_exact_plan(self, query):
        with make_service() as service:
            response = service.optimize(query)
        assert response.ok
        assert response.status == "ok"
        assert response.rung == "exact"
        assert not response.degraded
        assert response.attempts == 1
        assert response.retries == 0
        validate_plan(response.plan, query)
        check_finite(response.plan)

    def test_plan_matches_direct_optimizer_bit_for_bit(self, query):
        direct = ResilientOptimizer().optimize(query)
        with make_service() as service:
            response = service.optimize(query)
        assert response.plan.sexpr() == direct.plan.sexpr()
        got = repr(response.cost)
        want = repr(direct.cost)
        assert got == want

    def test_many_concurrent_requests_all_complete(self, query, star):
        queries = [query, star] * 10
        with make_service(workers=4) as service:
            futures = [service.submit(q) for q in queries]
            responses = [future.result() for future in futures]
        assert all(response.ok for response in responses)
        for q, response in zip(queries, responses):
            validate_plan(response.plan, q)

    def test_request_ids_and_seeds_are_distinct(self, query):
        with make_service() as service:
            first = service.submit(query)
            second = service.submit(query)
            ids = {first.result().request_id, second.result().request_id}
        assert len(ids) == 2

    def test_derived_seed_is_deterministic(self):
        a = OptimizationService(seed=5)
        b = OptimizationService(seed=5)
        assert a._derive_seed(17) == b._derive_seed(17)
        assert a._derive_seed(17) != a._derive_seed(18)

    def test_shared_plan_cache_hits_on_repeats(self, query):
        cache = PlanCache(16)
        with make_service(workers=2, plan_cache=cache) as service:
            first = service.optimize(query)
            second = service.optimize(query)
        assert first.ok and second.ok
        assert cache.hits >= 1
        assert second.plan.sexpr() == first.plan.sexpr()


class TestAdmissionControl:
    def test_overload_sheds_with_queue_depth(self, query):
        chaos = StallingChaos()
        service = make_service(workers=1, queue_capacity=2, chaos=chaos)
        with service:
            futures = [service.submit(query)]
            assert chaos.started.wait(timeout=10.0)
            # The worker is parked on request 0; the queue holds 2 more;
            # the next submission must shed deterministically.
            futures.append(service.submit(query))
            futures.append(service.submit(query))
            with pytest.raises(ServiceOverloadError) as caught:
                service.submit(query)
            assert caught.value.capacity == 2
            assert caught.value.queue_depth == 2
            chaos.release.set()
            for future in futures:
                assert future.result().ok
        assert service.rejected >= 1

    def test_submit_after_shutdown_raises(self, query):
        service = make_service()
        service.start()
        service.shutdown()
        with pytest.raises(ServiceShutdownError):
            service.submit(query)

    def test_priority_orders_the_backlog(self, query):
        chaos = StallingChaos()
        order = []
        service = make_service(workers=1, queue_capacity=8, chaos=chaos)
        with service:
            blocker = service.submit(query, priority=0)
            assert chaos.started.wait(timeout=10.0)
            low = service.submit(query, priority=1)
            high = service.submit(query, priority=9)
            for future in (blocker, low, high):
                future.add_done_callback(
                    lambda f: order.append(f.result().request_id)
                )
            chaos.release.set()
            high_id = high.result().request_id
            low_id = low.result().request_id
            blocker.result()
        assert order.index(high_id) < order.index(low_id)


class TestDeadlines:
    def test_deadline_expired_in_queue_is_shed_as_timeout(self, query):
        chaos = StallingChaos()
        service = make_service(workers=1, chaos=chaos)
        with service:
            blocker = service.submit(query)
            assert chaos.started.wait(timeout=10.0)
            doomed = service.submit(query, deadline_seconds=0.001)
            # Let the deadline lapse while the worker is parked.
            blocker_release = threading.Timer(0.1, chaos.release.set)
            blocker_release.start()
            response = doomed.result()
            blocker.result()
        assert response.status == "timeout"
        assert "queue" in response.error
        assert response.attempts == 0

    def test_generous_deadline_still_serves(self, query):
        with make_service() as service:
            response = service.optimize(query, deadline_seconds=60.0)
        assert response.ok


class TestShutdownSemantics:
    def test_draining_shutdown_finishes_backlog(self, query):
        service = make_service(workers=1)
        with service:
            futures = [service.submit(query) for _ in range(6)]
        # Context exit drains; every future must be resolved by now.
        assert all(future.done() for future in futures)
        assert all(future.result().ok for future in futures)

    def test_non_draining_shutdown_fails_pending(self, query):
        chaos = StallingChaos()
        service = make_service(workers=1, queue_capacity=8, chaos=chaos)
        service.start()
        blocker = service.submit(query)
        assert chaos.started.wait(timeout=10.0)
        pending = [service.submit(query) for _ in range(3)]
        chaos.release.set()
        service.shutdown(drain=False)
        assert blocker.result().ok  # in-flight work still finishes
        for future in pending:
            if future.exception() is not None:
                assert isinstance(future.exception(), ServiceShutdownError)

    def test_cancelled_queued_future_does_not_kill_the_worker(self, query):
        # Cancelling a still-queued future must not crash the worker that
        # later dequeues it (set_result on a cancelled future raises
        # InvalidStateError); the ticket is skipped and counted.
        chaos = StallingChaos()
        with make_service(workers=1, chaos=chaos) as service:
            blocker = service.submit(query)
            assert chaos.started.wait(timeout=10.0)
            doomed = service.submit(query)
            assert doomed.cancel()  # still queued: cancel succeeds
            chaos.release.set()
            assert blocker.result().ok
            follow_up = service.optimize(query)  # the worker still answers
            assert follow_up.ok
            health = service.healthz()
            assert health.workers_alive == 1
            assert health.unhandled_worker_errors == 0
            assert health.cancelled == 1
        with pytest.raises(CancelledError):
            doomed.result()

    def test_non_draining_shutdown_survives_cancelled_pending(self, query):
        chaos = StallingChaos()
        service = make_service(workers=1, queue_capacity=8, chaos=chaos)
        service.start()
        blocker = service.submit(query)
        assert chaos.started.wait(timeout=10.0)
        pending = [service.submit(query) for _ in range(3)]
        assert pending[1].cancel()
        # The worker is still parked: the bounded join times out, the
        # cancelled ticket is skipped (no InvalidStateError aborting the
        # sequence), and the state honestly stays "draining".
        assert service.shutdown(drain=False, timeout=0.05) is False
        assert service.healthz().status == "draining"
        for future in (pending[0], pending[2]):
            assert isinstance(future.exception(), ServiceShutdownError)
        assert pending[1].cancelled()
        # A second shutdown after the worker unparks really stops.
        chaos.release.set()
        assert service.shutdown(drain=False, timeout=10.0) is True
        assert service.healthz().status == "stopped"
        assert blocker.result().ok

    def test_restart_is_rejected(self, query):
        service = make_service()
        service.start()
        service.shutdown()
        with pytest.raises(ServiceShutdownError):
            service.start()


class TestRetries:
    def test_injected_fault_is_retried_to_an_exact_plan(self, query):
        direct = ResilientOptimizer().optimize(query)
        chaos = PoisonFirstAttempts(n=1, kind="raise")
        with make_service(workers=1, chaos=chaos) as service:
            response = service.optimize(query)
        assert response.ok
        assert response.rung == "exact"
        assert response.retries >= 1
        assert response.attempts >= 2
        assert sum(response.injected.values()) >= 1
        # The retried plan is the fault-free plan, bit for bit.
        assert response.plan.sexpr() == direct.plan.sexpr()
        got = repr(response.cost)
        want = repr(direct.cost)
        assert got == want

    def test_nan_poisoning_is_retried_not_cached(self, query):
        cache = PlanCache(16)
        chaos = PoisonFirstAttempts(n=1, kind="nan")
        with make_service(workers=1, chaos=chaos, plan_cache=cache) as service:
            response = service.optimize(query)
        assert response.ok
        check_finite(response.plan)

    def test_catalog_fault_is_retried(self, query):
        chaos = PoisonFirstAttempts(n=1, kind="catalog")
        with make_service(workers=1, chaos=chaos) as service:
            response = service.optimize(query)
        assert response.ok
        validate_plan(response.plan, query)

    def test_exhausted_retries_fall_back_to_best_degraded(self, query):
        # Every attempt is poisoned; the ladder's degraded rescue is kept.
        chaos = PoisonFirstAttempts(n=99, kind="raise")
        with make_service(
            workers=1,
            chaos=chaos,
            retry_policy=RetryPolicy(
                max_attempts=2, base_delay=0.001, max_delay=0.01
            ),
            breakers=BreakerBoard(failure_threshold=50),
        ) as service:
            response = service.optimize(query)
        assert response.ok
        assert response.degraded
        assert response.rung != "exact"
        validate_plan(response.plan, query)

    def test_organic_degradation_is_not_retried(self, query):
        # A hopeless expansion budget degrades without injected faults —
        # a permanent condition the service accepts on the first attempt.
        with make_service(
            workers=1,
            budget_factory=lambda: Budget(max_expansions=1),
        ) as service:
            response = service.optimize(query)
        assert response.ok
        assert response.degraded
        assert response.retries == 0
        assert response.attempts == 1


class TestBreakers:
    def test_repeated_faults_trip_the_cost_model_breaker(self, query):
        # Virtual time: the 30s cooldown elapses in the wait loop's
        # clock.sleep, not in real time.
        clock = ManualClock()
        chaos = PoisonFirstAttempts(n=99, kind="raise")
        board = BreakerBoard(
            failure_threshold=2, cooldown_seconds=30.0, clock=clock
        )
        with make_service(
            workers=1,
            chaos=chaos,
            breakers=board,
            clock=clock,
            sleep=clock.sleep,
            retry_policy=RetryPolicy(
                max_attempts=3, base_delay=0.001, max_delay=0.01
            ),
        ) as service:
            service.optimize(query)
        assert board.breaker("cost_model").trips >= 1
        trace = board.breaker("cost_model").trace()
        assert any("closed -> open" in line for line in trace)

    def test_breaker_recovery_full_cycle(self, query):
        # Poison exactly the first two attempts of request 0 with a
        # threshold-2 breaker: trip, wait out the cooldown, probe with the
        # clean third attempt, close.  Virtual time keeps it instant.
        clock = ManualClock()
        board = BreakerBoard(
            failure_threshold=2, cooldown_seconds=0.05, clock=clock
        )
        chaos = PoisonFirstAttempts(n=2, kind="raise")
        with make_service(
            workers=1,
            chaos=chaos,
            breakers=board,
            clock=clock,
            sleep=clock.sleep,
            retry_policy=RetryPolicy(
                max_attempts=5, base_delay=0.01, max_delay=0.1, jitter=0.0
            ),
        ) as service:
            response = service.optimize(query)
        assert response.ok
        assert response.rung == "exact"
        trace = board.breaker("cost_model").trace()
        assert trace == [
            "cost_model@2: closed -> open",
            "cost_model@2: open -> half_open",
            "cost_model@3: half_open -> closed",
        ]
        assert board.breaker("cost_model").state == CLOSED

    def test_wait_limit_fails_open_never_starves_the_request(self, query):
        # A breaker stuck open (huge cooldown) cannot starve a request:
        # past breaker_wait_limit the attempt proceeds ungated.  A no-op
        # sleep skips the cooldown-length waits without wall-clock cost.
        board = BreakerBoard(failure_threshold=1, cooldown_seconds=3600.0)
        board.breaker("cost_model").record_failure()
        assert board.breaker("cost_model").state == OPEN
        with make_service(
            workers=1,
            breakers=board,
            breaker_wait_limit=3,
            sleep=lambda seconds: None,
            retry_policy=RetryPolicy(base_delay=0.001, max_delay=0.01),
        ) as service:
            response = service.optimize(query)
        assert response.ok
        assert response.rung == "exact"
        assert response.breaker_waits == 4  # limit + the bypassing check
        validate_plan(response.plan, query)

    def test_gate_refusal_releases_half_open_probe_slots(self):
        # cost_model is half-open (one probe slot) while catalog is still
        # open: gating admits the cost_model probe, then catalog refuses.
        # The consumed slot must be handed back, or every later gate pays
        # the full fail-open backstop against a probe-starved breaker.
        clock = ManualClock()
        board = BreakerBoard(
            failure_threshold=1, cooldown_seconds=0.05, clock=clock
        )
        service = make_service(breakers=board, clock=clock, sleep=clock.sleep)
        cost = board.breaker("cost_model")
        catalog = board.breaker("catalog")
        cost.record_failure()  # opens at t=0
        clock.advance(0.05)  # cost_model cooldown elapses -> half-open
        catalog.record_failure()  # opens at t=0.05, still in cooldown
        refusal = service._gate_breakers()
        assert refusal is not None
        assert refusal.component == "catalog"
        assert cost.state == HALF_OPEN
        assert cost.allow()  # the probe slot came back, not leaked

    def test_open_breaker_waits_do_not_consume_attempts(self, query):
        clock = ManualClock()
        board = BreakerBoard(
            failure_threshold=1, cooldown_seconds=0.05, clock=clock
        )
        # Trip the breaker before the request ever runs.
        board.breaker("cost_model").record_failure()
        assert board.breaker("cost_model").state == OPEN
        with make_service(
            workers=1,
            breakers=board,
            clock=clock,
            sleep=clock.sleep,
        ) as service:
            response = service.optimize(query)
        assert response.ok
        assert response.breaker_waits >= 1
        assert response.attempts == 1  # waiting burned no attempts


class TestHealth:
    def test_healthz_reflects_served_requests(self, query):
        with make_service(workers=2, plan_cache=PlanCache(8)) as service:
            for _ in range(3):
                assert service.optimize(query).ok
            health = service.healthz()
            assert health.status == "ok"
            assert health.healthy
            assert health.workers_alive == 2
            assert health.completed == 3
            assert health.rung_histogram.get("exact") == 3
            assert set(health.breakers) == {"catalog", "cost_model"}
            assert health.plan_cache is not None
        stopped = service.healthz()
        assert stopped.status == "stopped"
        assert not stopped.healthy

    def test_healthz_reports_degraded_while_serving_with_open_breakers(
        self, query
    ):
        clock = ManualClock()
        board = BreakerBoard(
            failure_threshold=1, cooldown_seconds=60.0, clock=clock
        )
        board.breaker("cost_model").record_failure()
        assert board.breaker("cost_model").state == OPEN
        with make_service(workers=1, breakers=board, clock=clock) as service:
            health = service.healthz()
            # Serving with an open breaker is degraded, not unhealthy-dead:
            # requests still complete via retries and the fail-open backstop.
            assert health.status == "degraded"
            assert not health.healthy
            assert "serving degraded" in health.describe()
        assert service.healthz().status == "stopped"

    def test_describe_renders_unhandled_worker_errors(self, query):
        def exploding_chaos(request, attempt):
            raise RuntimeError("chaos hook bug")

        with make_service(workers=1, chaos=exploding_chaos) as service:
            service.optimize(query)
            described = service.healthz().describe()
        assert "1 unhandled error(s)" in described

    def test_healthz_serializes(self, query):
        import json

        with make_service() as service:
            service.optimize(query)
            payload = json.dumps(service.healthz().as_dict())
        assert "rung_histogram" in payload

    def test_unhandled_worker_error_is_counted_not_fatal(self, query):
        def exploding_chaos(request, attempt):
            raise RuntimeError("chaos hook bug")

        with make_service(workers=1, chaos=exploding_chaos) as service:
            response = service.optimize(query)
            health = service.healthz()
            assert response.status == "failed"
            assert "unhandled" in response.error
            assert health.unhandled_worker_errors == 1
            assert health.workers_alive == 1  # the worker survived
            # The pool still serves follow-up work (hook fails again, but
            # the worker loop keeps answering).
            follow_up = service.optimize(query)
            assert follow_up.status == "failed"


class TestTopK:
    """Ranked serving: topk requests, breaker-suspect rank-2 fallback."""

    def test_topk_request_fills_ranked_costs(self, query):
        from repro.telemetry import MetricRegistry, Telemetry

        registry = MetricRegistry(enabled=True)
        with make_service(
            telemetry=Telemetry(registry=registry)
        ) as service:
            response = service.optimize(query, topk=3)
        assert response.ok
        assert response.rank == 1
        assert len(response.ranked_costs) > 1
        assert list(response.ranked_costs) == sorted(response.ranked_costs)
        assert response.cost == response.ranked_costs[0]
        validate_plan(response.plan, query)
        served = registry.counter(
            "repro_topk_requests_total",
            labels={"served": str(len(response.ranked_costs))},
        )
        assert served.value == 1

    def test_single_best_request_is_unchanged(self, query):
        with make_service() as service:
            response = service.optimize(query)
        assert response.rank == 1
        assert response.ranked_costs == ()

    def test_topk_must_be_positive(self, query):
        with make_service() as service:
            with pytest.raises(ValueError):
                service.optimize(query, topk=0)

    def test_open_cost_model_breaker_serves_rank_two(self, query):
        from repro.telemetry import MetricRegistry, Telemetry

        registry = MetricRegistry(enabled=True)
        # Stuck-open breaker (huge cooldown): past breaker_wait_limit the
        # attempt proceeds ungated, so the request is served while the
        # cost model is still suspect at response time.
        board = BreakerBoard(failure_threshold=1, cooldown_seconds=3600.0)
        board.breaker("cost_model").record_failure()
        assert board.breaker("cost_model").state == OPEN
        with make_service(
            workers=1,
            breakers=board,
            breaker_wait_limit=3,
            sleep=lambda seconds: None,
            telemetry=Telemetry(registry=registry),
        ) as service:
            response = service.optimize(query, topk=3)
        assert response.ok
        assert response.rank == 2
        assert response.cost == response.ranked_costs[1]
        assert response.cost >= response.ranked_costs[0]
        validate_plan(response.plan, query)
        assert registry.counter("repro_topk_fallback_total").value == 1

    def test_closed_breaker_never_triggers_the_fallback(self, query):
        from repro.telemetry import MetricRegistry, Telemetry

        registry = MetricRegistry(enabled=True)
        with make_service(
            telemetry=Telemetry(registry=registry)
        ) as service:
            response = service.optimize(query, topk=3)
        assert response.rank == 1
        assert registry.counter("repro_topk_fallback_total").value == 0


class TestDurableWarmStart:
    """``store_path=`` gives the service an L2 tier it owns end to end."""

    def test_restarted_service_serves_warm_from_the_store(
        self, tmp_path, query
    ):
        path = str(tmp_path / "service.rpl")
        with make_service(store_path=path) as service:
            cold = service.optimize(query)
        assert cold.ok

        # "Restart": a fresh service over the same segment file.
        with make_service(store_path=path) as service:
            cache = service._plan_cache
            warm = service.optimize(query)
        assert warm.ok
        assert cache.l2_hits == 1
        assert warm.plan.sexpr() == cold.plan.sexpr()
        assert repr(warm.cost) == repr(cold.cost)

    def test_explicit_plan_cache_wins_over_store_path(self, tmp_path, query):
        cache = PlanCache(16)
        with make_service(
            plan_cache=cache, store_path=str(tmp_path / "ignored.rpl")
        ) as service:
            assert service.optimize(query).ok
        assert not (tmp_path / "ignored.rpl").exists()

    def test_shutdown_closes_the_store_the_service_owns(
        self, tmp_path, query
    ):
        path = str(tmp_path / "service.rpl")
        service = make_service(store_path=path).start()
        assert service.optimize(query).ok
        store = service._plan_cache.store
        assert store is not None and store._handle is not None
        assert service.shutdown(drain=True)
        assert store._handle is None
