"""Budget semantics: the anytime contract's enforcement object."""

import pytest

from repro.errors import BudgetExceeded
from repro.resilience import Budget


class FakeClock:
    """A controllable monotonic clock."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestConstruction:
    def test_unlimited_is_unbounded(self):
        assert Budget.unlimited().unbounded

    def test_any_axis_makes_it_bounded(self):
        assert not Budget(max_expansions=1).unbounded
        assert not Budget(deadline_seconds=1.0).unbounded
        assert not Budget(max_memo_entries=1).unbounded

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"deadline_seconds": -1.0},
            {"max_expansions": -1},
            {"max_memo_entries": -5},
        ],
    )
    def test_negative_limits_rejected(self, kwargs):
        with pytest.raises(ValueError):
            Budget(**kwargs)


class TestExpansionAxis:
    def test_fires_on_first_check_past_the_cap(self):
        budget = Budget(max_expansions=3)
        for _ in range(3):
            budget.check()
        with pytest.raises(BudgetExceeded) as excinfo:
            budget.check()
        assert excinfo.value.reason == "expansions"
        assert budget.exhausted_reason == "expansions"

    def test_unlimited_never_fires(self):
        budget = Budget.unlimited()
        for _ in range(10_000):
            budget.check()
        assert budget.expansions == 10_000
        assert budget.exhausted_reason is None


class TestMemoAxis:
    def test_fires_when_memo_grows_past_the_cap(self):
        budget = Budget(max_memo_entries=5)
        budget.check(memo_size=5)
        with pytest.raises(BudgetExceeded) as excinfo:
            budget.check(memo_size=6)
        assert excinfo.value.reason == "memo"


class TestDeadlineAxis:
    def test_fires_once_the_clock_passes_the_deadline(self):
        clock = FakeClock()
        budget = Budget(deadline_seconds=1.0, clock=clock)
        budget.check()  # first check probes the clock
        clock.now = 2.0
        with pytest.raises(BudgetExceeded) as excinfo:
            # Deadline probes happen on a stride; drain one stride's worth.
            for _ in range(64):
                budget.check()
        assert excinfo.value.reason == "deadline"

    def test_probe_happens_on_the_very_first_check(self):
        clock = FakeClock()
        budget = Budget(deadline_seconds=0.5, clock=clock)
        budget.start()
        clock.now = 1.0
        with pytest.raises(BudgetExceeded):
            budget.check()

    def test_clock_is_monotonic_from_start(self):
        clock = FakeClock()
        budget = Budget(deadline_seconds=10.0, clock=clock)
        assert budget.elapsed() == 0.0  # not started yet
        budget.start()
        clock.now = 3.0
        assert budget.elapsed() == 3.0
        assert budget.remaining_seconds() == pytest.approx(7.0)

    def test_start_is_idempotent(self):
        clock = FakeClock()
        budget = Budget(deadline_seconds=10.0, clock=clock)
        budget.start()
        clock.now = 5.0
        budget.start()  # must not reset the epoch
        assert budget.elapsed() == 5.0

    def test_remaining_none_when_axis_disabled(self):
        assert Budget(max_expansions=3).remaining_seconds() is None


class TestSnapshot:
    def test_snapshot_reports_consumption(self):
        budget = Budget(max_expansions=100)
        budget.check(memo_size=7)
        budget.check(memo_size=9)
        snapshot = budget.snapshot()
        assert snapshot["expansions"] == 2
        assert snapshot["memo_entries"] == 9
        assert snapshot["max_expansions"] == 100
        assert snapshot["exhausted"] is None

    def test_snapshot_records_the_fired_axis(self):
        budget = Budget(max_expansions=1)
        budget.check()
        with pytest.raises(BudgetExceeded):
            budget.check()
        assert budget.snapshot()["exhausted"] == "expansions"

    def test_repr_mentions_the_axes(self):
        assert "unlimited" in repr(Budget.unlimited())
        assert "expansions<=5" in repr(Budget(max_expansions=5))


class TestExceptionPayload:
    def test_budget_exceeded_carries_reason_and_partials(self):
        error = BudgetExceeded("deadline", "too slow")
        assert error.reason == "deadline"
        assert error.partial_plan is None
        assert error.memo_entries == 0
        assert "deadline" in str(error)
