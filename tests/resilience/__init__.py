"""Tests for the resilience layer (budgets, faults, degradation)."""
