"""Fault injector semantics: determinism, transparency, every fault point."""

import math

import pytest

from repro.core.optimizer import Optimizer
from repro.cost.haas import HaasCostModel
from repro.graph import bitset
from repro.errors import CatalogError, InjectedFaultError
from repro.partitioning.registry import get_partitioning
from repro.resilience import COST_FAULT_MODES, FaultInjector


class TestArming:
    def test_context_manager_arms_and_disarms(self):
        injector = FaultInjector(seed=1)
        assert not injector.active
        with injector as armed:
            assert armed is injector
            assert injector.active
        assert not injector.active

    def test_arm_resets_counters(self):
        injector = FaultInjector(seed=1)
        with injector:
            injector._fire("cost_model")
        assert injector.total_injected == 1
        with injector:
            assert injector.total_injected == 0

    @pytest.mark.parametrize("kwargs", [{"rate": -0.1}, {"rate": 1.5}, {"after": -1}])
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultInjector(**kwargs)

    def test_unknown_cost_mode_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector().cost_model(HaasCostModel(), mode="explode")


class TestCostModelFaults:
    def _stats(self, small_query):
        from repro.cost.statistics import StatisticsProvider

        provider = StatisticsProvider(small_query)
        return provider.stats(0b01), provider.stats(0b10)

    def test_raise_mode(self, small_query):
        injector = FaultInjector(seed=0)
        model = injector.cost_model(HaasCostModel(), mode="raise")
        left, right = self._stats(small_query)
        with injector:
            with pytest.raises(InjectedFaultError):
                model.join_cost(left, right)

    @pytest.mark.parametrize("mode,check", [
        ("nan", math.isnan),
        ("inf", math.isinf),
    ])
    def test_poison_modes(self, small_query, mode, check):
        injector = FaultInjector(seed=0)
        model = injector.cost_model(HaasCostModel(), mode=mode)
        left, right = self._stats(small_query)
        with injector:
            assert check(model.join_cost(left, right))

    def test_disarmed_is_pass_through(self, small_query):
        left, right = self._stats(small_query)
        plain = HaasCostModel().join_cost(left, right)
        wrapped = FaultInjector(seed=0).cost_model(HaasCostModel(), mode="raise")
        assert wrapped.join_cost(left, right) == plain

    def test_disarmed_optimization_is_bit_identical(self, small_query):
        injector = FaultInjector(seed=0)
        clean = Optimizer(cost_model_factory=HaasCostModel).optimize(small_query)
        wrapped = Optimizer(
            cost_model_factory=injector.cost_model_factory(HaasCostModel, "nan")
        ).optimize(small_query)
        assert wrapped.cost == clean.cost
        assert wrapped.plan.sexpr() == clean.plan.sexpr()
        assert injector.total_injected == 0

    def test_partial_rate_is_deterministic(self, small_query):
        left, right = self._stats(small_query)

        def run():
            injector = FaultInjector(seed=99, rate=0.5)
            model = injector.cost_model(HaasCostModel(), mode="nan")
            with injector:
                outcomes = [
                    math.isnan(model.join_cost(left, right)) for _ in range(64)
                ]
            return outcomes, injector.total_injected

        first, n_first = run()
        second, n_second = run()
        assert first == second
        assert n_first == n_second
        assert 0 < n_first < 64  # rate 0.5 actually mixes

    def test_after_delays_the_first_fault(self, small_query):
        left, right = self._stats(small_query)
        injector = FaultInjector(seed=0, after=3)
        model = injector.cost_model(HaasCostModel(), mode="nan")
        with injector:
            outcomes = [math.isnan(model.join_cost(left, right)) for _ in range(5)]
        assert outcomes == [False, False, False, True, True]

    def test_all_modes_are_exposed(self):
        assert set(COST_FAULT_MODES) == {"raise", "nan", "inf", "latency"}


class TestPartitioningFaults:
    def test_bogus_cut_is_overlapping(self, small_query):
        injector = FaultInjector(seed=0)
        strategy = injector.partitioning(get_partitioning("mincut_conservative"))
        full = small_query.graph.all_vertices
        with injector:
            cuts = list(strategy.partitions(small_query.graph, full))
        assert len(cuts) == 1
        left, right = cuts[0]
        assert left == right  # overlapping and non-covering: not a ccp
        assert injector.injected["partitioning"] == 1

    def test_disarmed_partitions_match_inner(self, small_query):
        inner = get_partitioning("mincut_conservative")
        wrapped = FaultInjector(seed=0).partitioning(inner)
        full = small_query.graph.all_vertices
        assert list(wrapped.partitions(small_query.graph, full)) == list(
            inner.partitions(small_query.graph, full)
        )


class TestCatalogFaults:
    def test_dropped_relation_raises_while_armed(self, small_query):
        injector = FaultInjector(seed=0)
        faulty = injector.query(small_query, drop=2)
        with injector:
            with pytest.raises(CatalogError, match=r"\[injected\].*R2"):
                faulty.catalog.cardinality(2)
        assert injector.injected["catalog"] == 1

    def test_other_relations_unaffected(self, small_query):
        injector = FaultInjector(seed=0)
        faulty = injector.query(small_query, drop=2)
        with injector:
            assert faulty.catalog.cardinality(0) == small_query.catalog.cardinality(0)

    def test_disarmed_catalog_is_transparent(self, small_query):
        injector = FaultInjector(seed=0)
        faulty = injector.query(small_query, drop=2)
        assert faulty.catalog.cardinality(2) == small_query.catalog.cardinality(2)

    def test_victim_choice_is_seeded(self, small_query):
        a = FaultInjector(seed=5).query(small_query)
        b = FaultInjector(seed=5).query(small_query)
        assert a.catalog.dropped_relation == b.catalog.dropped_relation


class TestLatencyMode:
    """The ``latency`` fault mode: slow, never wrong (ISSUE satellite)."""

    def _stats(self, small_query):
        from repro.cost.statistics import StatisticsProvider

        provider = StatisticsProvider(small_query)
        return provider.stats(0b01), provider.stats(0b10)

    def test_latency_in_cost_fault_modes(self):
        assert "latency" in COST_FAULT_MODES

    def test_injected_delay_uses_the_injectable_sleep(self, small_query):
        naps = []
        injector = FaultInjector(
            seed=0, latency_seconds=0.25, sleep=naps.append
        )
        model = injector.cost_model(HaasCostModel(), mode="latency")
        left, right = self._stats(small_query)
        with injector:
            delayed = model.join_cost(left, right)
        assert naps == [0.25]
        assert injector.injected.get("cost_model") == 1
        # Slow but correct: the returned cost is the true cost.
        plain = HaasCostModel().join_cost(left, right)
        assert float(delayed).hex() == float(plain).hex()

    def test_disarmed_latency_mode_never_sleeps(self, small_query):
        naps = []
        injector = FaultInjector(seed=0, sleep=naps.append)
        model = injector.cost_model(HaasCostModel(), mode="latency")
        left, right = self._stats(small_query)
        model.join_cost(left, right)
        assert naps == []

    def test_latency_rate_is_seeded_and_deterministic(self, small_query):
        left, right = self._stats(small_query)

        def schedule():
            naps = []
            injector = FaultInjector(
                seed=7, rate=0.3, latency_seconds=0.01, sleep=naps.append
            )
            model = injector.cost_model(HaasCostModel(), mode="latency")
            with injector:
                for _ in range(64):
                    model.join_cost(left, right)
            return len(naps), injector.injected.get("cost_model", 0)

        first = schedule()
        second = schedule()
        assert first == second
        assert 0 < first[0] < 64

    def test_latency_preserves_plan_choice_bit_for_bit(self, small_query):
        from repro.core.optimizer import Optimizer

        clean = Optimizer().optimize(small_query)
        naps = []
        injector = FaultInjector(
            seed=3, rate=0.5, latency_seconds=0.001, sleep=naps.append
        )
        with injector:
            slowed = Optimizer(
                cost_model_factory=injector.cost_model_factory(
                    HaasCostModel, "latency"
                )
            ).optimize(small_query)
        assert naps  # faults really fired...
        assert slowed.plan.sexpr() == clean.plan.sexpr()  # ...plan unmoved
        assert slowed.cost.hex() == clean.cost.hex()

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector(latency_seconds=-0.1)


class TestIoFaults:
    """The ``io`` fault family: seeded write corruption for file handles."""

    def _wrapped(self, tmp_path, kind, seed=7, rate=1.0):
        from repro.resilience import StoreFaultInjector

        injector = StoreFaultInjector(seed=seed, rate=rate, kind=kind)
        handle = open(tmp_path / f"{kind}.bin", "wb")
        return injector, injector.wrap_handle(handle)

    def test_disarmed_wrapper_is_bit_identical(self, tmp_path):
        injector, handle = self._wrapped(tmp_path, "bitflip")
        payload = bytes(range(256)) * 4
        with handle:
            handle.write(payload)
        assert (tmp_path / "bitflip.bin").read_bytes() == payload
        assert injector.total_injected == 0

    def test_raise_mode_lands_no_bytes(self, tmp_path):
        injector, handle = self._wrapped(tmp_path, "raise")
        with injector, handle:
            with pytest.raises(InjectedFaultError):
                handle.write(b"abcdef")
        assert (tmp_path / "raise.bin").read_bytes() == b""

    def test_torn_mode_flushes_a_strict_prefix(self, tmp_path):
        injector, handle = self._wrapped(tmp_path, "torn")
        payload = b"0123456789" * 10
        with injector, handle:
            with pytest.raises(InjectedFaultError):
                handle.write(payload)
        landed = (tmp_path / "torn.bin").read_bytes()
        assert len(landed) < len(payload)
        assert payload.startswith(landed)

    def test_bitflip_mode_flips_exactly_one_bit(self, tmp_path):
        injector, handle = self._wrapped(tmp_path, "bitflip")
        payload = bytes(range(256))
        with injector, handle:
            handle.write(payload)  # reports success
        landed = (tmp_path / "bitflip.bin").read_bytes()
        assert len(landed) == len(payload)
        flipped = [
            bitset.bit_count(a ^ b) for a, b in zip(landed, payload) if a != b
        ]
        assert flipped == [1]

    def test_io_faults_are_seeded_and_deterministic(self, tmp_path):
        corruptions = []
        for attempt in range(2):
            from repro.resilience import StoreFaultInjector

            injector = StoreFaultInjector(seed=13, kind="bitflip")
            path = tmp_path / f"det-{attempt}.bin"
            with injector, injector.wrap_handle(open(path, "wb")) as handle:
                handle.write(bytes(64))
            corruptions.append(path.read_bytes())
        assert corruptions[0] == corruptions[1]

    def test_store_injector_rejects_unknown_kind(self):
        from repro.resilience import StoreFaultInjector

        with pytest.raises(ValueError):
            StoreFaultInjector(kind="gamma-ray")

    def test_stale_epoch_kind_leaves_handles_untouched(self, tmp_path):
        from repro.resilience import StoreFaultInjector

        injector = StoreFaultInjector(seed=1, kind="stale_epoch")
        raw = open(tmp_path / "plain.bin", "wb")
        assert injector.wrap_handle(raw) is raw
        assert not injector.epoch_fires()  # disarmed: never fires
        with injector:
            assert injector.epoch_fires()
        raw.close()

    def test_mode_catalogues_are_exported(self):
        from repro.resilience import IO_FAULT_MODES, STORE_FAULT_KINDS

        assert IO_FAULT_MODES == ("raise", "torn", "bitflip")
        assert set(STORE_FAULT_KINDS) == set(IO_FAULT_MODES) | {"stale_epoch"}
