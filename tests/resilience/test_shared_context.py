"""The ladder runs every rung on ONE shared context (ISSUE satellite).

A tight budget forces the exact rung to fail and a heuristic rung to
rescue the run; the test asserts that exactly one
:class:`~repro.context.OptimizationContext` was built for the whole
descent, that the rescuing rung reused its statistics provider (fork
semantics), and that the returned plan still validates.
"""

import pytest

from repro.context import OptimizationContext
from repro.plans.validation import check_finite, validate_plan
from repro.resilience.budget import Budget
from repro.resilience.optimizer import ResilientOptimizer
from repro.workload.generator import QueryGenerator


@pytest.fixture
def query():
    return QueryGenerator(seed=31).generate("clique", 9)


def test_one_context_is_shared_across_all_rungs(query, monkeypatch):
    built = []
    real_for_query = OptimizationContext.for_query.__func__

    def counting_for_query(cls, *args, **kwargs):
        context = real_for_query(cls, *args, **kwargs)
        built.append(context)
        return context

    monkeypatch.setattr(
        OptimizationContext, "for_query", classmethod(counting_for_query)
    )

    result = ResilientOptimizer().optimize(
        query, budget=Budget(max_expansions=5)
    )

    # The exact rung ran out of budget; a lower rung produced the plan.
    assert result.degraded
    assert result.rung != "exact"
    check_finite(result.plan)
    validate_plan(result.plan, query)

    # Exactly one context was built for the entire descent, and it is the
    # one the result exposes.
    assert len(built) == 1
    assert result.context is built[0]

    # Fork semantics: every rung context shares the descent's statistics
    # provider and budget identity.
    fork = result.context.fork()
    assert fork.provider is result.context.provider
    assert fork.budget is result.context.budget

    # The shared provider actually accumulated the rungs' statistics work
    # (more than the per-relation singletons it starts with).
    assert result.context.provider.cache_size() > query.n_relations


def test_successful_exact_rung_also_exposes_the_context(query):
    result = ResilientOptimizer().optimize(query)
    assert not result.degraded
    assert result.context is not None
    assert result.stats is result.context.stats


def test_two_threads_forking_one_parent_match_sequential(query):
    """Concurrent rungs over a shared parent context stay deterministic
    (ISSUE satellite): two threads optimizing through forks of one parent
    produce plans bit-identical to a sequential run's."""
    import threading

    sequential = ResilientOptimizer().optimize(query)

    parent = OptimizationContext.for_query(query)
    results = [None, None]
    errors = []

    def optimize(slot):
        try:
            results[slot] = ResilientOptimizer().optimize(
                query, context=parent.fork()
            )
        except Exception as error:
            errors.append(error)

    threads = [
        threading.Thread(target=optimize, args=(slot,)) for slot in (0, 1)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert not errors
    for result in results:
        assert result is not None
        validate_plan(result.plan, query)
        assert result.plan.sexpr() == sequential.plan.sexpr()
        assert result.cost.hex() == sequential.cost.hex()

    # Both forks really shared the parent's statistics provider.
    assert all(r.context.provider is parent.provider for r in results)
