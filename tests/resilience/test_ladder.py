"""Degradation-ladder behaviour: every rung, determinism, full coverage."""

import pytest

from repro.core.optimizer import Optimizer
from repro.cost.haas import HaasCostModel
from repro.errors import ResilienceError
from repro.plans.validation import check_finite, validate_plan
from repro.resilience import Budget, FaultInjector, ResilientOptimizer
from repro.workload.generator import QueryGenerator

FAMILIES = ("chain", "star", "cycle", "clique", "acyclic")


def _query(family, n=8, seed=17):
    return QueryGenerator(seed=seed).generate(family, n)


class TestExactRung:
    @pytest.mark.parametrize("family", ("chain", "star", "clique"))
    def test_unbudgeted_run_equals_plain_optimizer(self, family):
        query = _query(family, n=7)
        exact = Optimizer().optimize(query)
        resilient = ResilientOptimizer().optimize(query)
        assert not resilient.degraded
        assert resilient.rung == "exact"
        assert resilient.cost == exact.cost
        assert resilient.plan.sexpr() == exact.plan.sexpr()
        assert resilient.exact is not None

    @pytest.mark.parametrize("family", ("chain", "star", "clique"))
    def test_unreachable_budget_is_identical_to_no_budget(self, family):
        """Determinism: a budget that never fires must not perturb the run."""
        query = _query(family, n=7)
        unbudgeted = ResilientOptimizer().optimize(query)
        budgeted = ResilientOptimizer().optimize(
            query, budget=Budget(deadline_seconds=3600.0, max_expansions=10**9)
        )
        assert budgeted.rung == "exact"
        assert budgeted.cost == unbudgeted.cost
        assert budgeted.plan.sexpr() == unbudgeted.plan.sexpr()

    def test_compare_fallback_populates_cost_gap(self):
        query = _query("chain", n=6)
        result = ResilientOptimizer(compare_fallback=True).optimize(query)
        assert result.report.fallback_cost is not None
        gap = result.report.cost_gap
        assert gap is not None
        assert gap <= 1.0 + 1e-9  # exact can never be worse than a heuristic


class TestBestSoFarRung:
    def test_tight_expansion_budget_salvages_a_plan(self):
        query = _query("clique", n=8)
        result = ResilientOptimizer().optimize(
            query, budget=Budget(max_expansions=10)
        )
        # APCBI builds a complete heuristic tree before enumeration, so the
        # salvage rung always has something valid to return.
        assert result.rung == "best_so_far"
        check_finite(result.plan)
        validate_plan(result.plan, query)
        assert result.report.budget_exceeded == "expansions"
        assert result.report.budget is not None
        assert result.report.budget["exhausted"] == "expansions"


class TestRankedSalvage:
    """Top-k best-so-far: the rung yields from the ranked stream."""

    def test_topk_salvage_returns_rank_ordered_stream(self):
        query = _query("clique", n=8)
        result = ResilientOptimizer(topk=3).optimize(
            query, budget=Budget(max_expansions=10)
        )
        assert result.rung == "best_so_far"
        ranked = result.ranked
        assert ranked[0] is result.plan
        costs = [plan.cost for plan in ranked]
        assert costs == sorted(costs)
        for plan in ranked:
            check_finite(plan)
            validate_plan(plan, query)

    def test_poisoned_rank_one_salvages_rank_two(self, monkeypatch):
        from repro.errors import BudgetExceeded
        from repro.plans.join_tree import JoinNode

        query = _query("chain", n=5)
        ranked = ResilientOptimizer(topk=2).optimize(query).ranked
        assert len(ranked) == 2
        clean_first, clean_second = ranked
        # A structurally valid rank-1 plan whose root cost is NaN — what a
        # faulting cost model leaves behind in the interrupted memo.
        poisoned = JoinNode(
            clean_first.left,
            clean_first.right,
            clean_first.cardinality,
            operator_cost=float("nan"),
        )

        resilient = ResilientOptimizer(topk=2)

        def interrupted(query, budget=None, context=None):
            error = BudgetExceeded("deadline", "synthetic interruption")
            error.partial_plan = poisoned
            error.partial_ranked = (poisoned, clean_second)
            raise error

        monkeypatch.setattr(resilient._optimizer, "optimize", interrupted)
        result = resilient.optimize(query)
        assert result.rung == "best_so_far"
        assert result.plan is clean_second
        check_finite(result.plan)
        validate_plan(result.plan, query)
        attempt = next(
            a for a in result.report.attempts if a.rung == "best_so_far"
        )
        assert attempt.detail == "salvaged rank 2"
        assert result.ranked == (clean_second,)


class TestHeuristicRungs:
    def test_falls_to_first_heuristic_without_a_partial(self):
        query = _query("clique", n=8)
        result = ResilientOptimizer(pruning="none").optimize(
            query, budget=Budget(max_expansions=5)
        )
        assert result.rung == "ikkbz"
        validate_plan(result.plan, query)
        attempted = [attempt.rung for attempt in result.report.attempts]
        assert attempted[:3] == ["exact", "best_so_far", "ikkbz"]

    def test_ladder_order_is_configurable(self):
        query = _query("chain", n=6)
        result = ResilientOptimizer(
            pruning="none", heuristic_ladder=("goo",)
        ).optimize(query, budget=Budget(max_expansions=5))
        assert result.rung == "goo"

    def test_unknown_heuristic_fails_fast(self):
        with pytest.raises(Exception):
            ResilientOptimizer(heuristic_ladder=("nonesuch",))


class TestStructuralRung:
    @pytest.mark.parametrize("mode", ("raise", "nan", "inf"))
    def test_cost_faults_fall_through_to_structural(self, mode):
        query = _query("chain", n=7)
        injector = FaultInjector(seed=3)
        resilient = ResilientOptimizer(
            pruning="none",
            cost_model_factory=injector.cost_model_factory(HaasCostModel, mode),
        )
        with injector:
            result = resilient.optimize(query)
        assert result.rung == "structural"
        validate_plan(result.plan, query)  # structure is sound, costs aside
        assert injector.total_injected > 0


class TestTotalFailure:
    def test_catalog_loss_raises_a_typed_error_with_report(self):
        query = _query("chain", n=6)
        injector = FaultInjector(seed=3)
        faulty = injector.query(query, drop=1)
        with injector:
            with pytest.raises(ResilienceError) as excinfo:
                ResilientOptimizer().optimize(faulty)
        report = excinfo.value.report
        assert report is not None
        assert report.rung == "none"
        assert all(attempt.status == "failed" for attempt in report.attempts)


class TestFullCoverage:
    """The ISSUE acceptance criterion: 100% valid plans under duress."""

    @pytest.mark.parametrize("family", FAMILIES)
    def test_valid_plan_under_cost_faults_and_deadline(self, family):
        injector = FaultInjector(seed=11, rate=0.3)
        resilient = ResilientOptimizer(
            cost_model_factory=injector.cost_model_factory(HaasCostModel, "nan")
        )
        for seed in (1, 2, 3):
            query = QueryGenerator(seed=seed).generate(family, 8)
            with injector:
                result = resilient.optimize(
                    query, budget=Budget(deadline_seconds=0.050)
                )
            check_finite(result.plan)
            validate_plan(result.plan, query)

    def test_partitioner_faults_still_yield_valid_plans(self):
        query = _query("cycle", n=7)
        injector = FaultInjector(seed=5, rate=0.5)
        resilient = ResilientOptimizer()
        base = resilient.optimizer
        # Wrap the partitioner by running a raw generator through the
        # injector: the public seam is the strategy objects themselves.
        from repro.core.apcbi import ApcbiPlanGenerator
        from repro.partitioning.registry import get_partitioning
        from repro.stats.counters import OptimizationStats

        strategy = injector.partitioning(get_partitioning("mincut_conservative"))
        with injector:
            with pytest.raises(Exception):
                generator = ApcbiPlanGenerator(
                    query, strategy, HaasCostModel(), OptimizationStats()
                )
                plan = generator.run()
                validate_plan(plan, query)  # either raise above or fail here
                raise AssertionError("bogus cut produced a valid plan")
        # The resilient facade with a healthy partitioner still succeeds.
        result = base.optimize(query)
        validate_plan(result.plan, query)
