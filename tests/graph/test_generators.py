"""Tests for the graph-shape generators."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.errors import GraphError
from repro.graph import bitset, generators


class TestChain:
    def test_edge_count(self):
        assert len(generators.chain_graph(6).edges) == 5

    def test_shape(self):
        graph = generators.chain_graph(4)
        assert graph.edges == frozenset({(0, 1), (1, 2), (2, 3)})

    def test_single_relation_allowed(self):
        assert generators.chain_graph(1).n_vertices == 1

    def test_zero_rejected(self):
        with pytest.raises(GraphError):
            generators.chain_graph(0)


class TestStar:
    def test_hub_is_vertex_zero(self):
        graph = generators.star_graph(5)
        assert all(u == 0 for u, _ in graph.edges)

    def test_edge_count(self):
        assert len(generators.star_graph(7).edges) == 6


class TestCycle:
    def test_edge_count_equals_vertices(self):
        assert len(generators.cycle_graph(6).edges) == 6

    def test_every_vertex_has_degree_two(self):
        graph = generators.cycle_graph(5)
        for v in range(5):
            assert bitset.bit_count(graph.adjacency(v)) == 2

    def test_too_small_rejected(self):
        with pytest.raises(GraphError):
            generators.cycle_graph(2)


class TestClique:
    def test_edge_count(self):
        assert len(generators.clique_graph(6).edges) == 15

    def test_all_pairs_joined(self):
        graph = generators.clique_graph(4)
        for i in range(4):
            for j in range(i + 1, 4):
                assert graph.has_edge(i, j)


class TestRandomAcyclic:
    @given(st.integers(2, 12), st.integers(0, 2**31 - 1))
    def test_is_a_connected_tree(self, n, seed):
        graph = generators.random_acyclic_graph(n, random.Random(seed))
        assert len(graph.edges) == n - 1
        assert graph.is_connected(graph.all_vertices)

    def test_deterministic_under_seed(self):
        a = generators.random_acyclic_graph(8, random.Random(5))
        b = generators.random_acyclic_graph(8, random.Random(5))
        assert a == b

    def test_default_rng_is_deterministic(self):
        # Without an explicit rng the fixed DEFAULT_SEED applies, so repeated
        # calls agree with each other and with an explicitly seeded call.
        assert generators.random_acyclic_graph(8) == generators.random_acyclic_graph(8)
        assert generators.random_acyclic_graph(8) == generators.random_acyclic_graph(
            8, random.Random(generators.DEFAULT_SEED)
        )


class TestRandomCyclic:
    @given(st.integers(3, 12), st.integers(0, 2**31 - 1))
    def test_is_connected_with_a_cycle(self, n, seed):
        graph = generators.random_cyclic_graph(n, rng=random.Random(seed))
        assert graph.is_connected(graph.all_vertices)
        assert len(graph.edges) >= n  # spanning tree + at least one extra

    def test_extra_edges_parameter(self):
        graph = generators.random_cyclic_graph(6, extra_edges=2, rng=random.Random(1))
        assert len(graph.edges) == 7

    def test_extra_edges_capped_at_clique(self):
        graph = generators.random_cyclic_graph(4, extra_edges=100, rng=random.Random(1))
        assert len(graph.edges) == 6

    def test_default_rng_is_deterministic(self):
        assert generators.random_cyclic_graph(8) == generators.random_cyclic_graph(8)


class TestFamilyRegistry:
    def test_all_families_present(self):
        assert set(generators.GRAPH_FAMILIES) == {
            "chain", "star", "cycle", "clique", "acyclic", "cyclic",
        }

    @pytest.mark.parametrize("family", sorted(generators.GRAPH_FAMILIES))
    def test_each_family_generates_connected_graph(self, family):
        graph = generators.GRAPH_FAMILIES[family](5, random.Random(3))
        assert graph.n_vertices == 5
        assert graph.is_connected(graph.all_vertices)
