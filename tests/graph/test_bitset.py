"""Unit and property tests for the bitset vocabulary."""

import pytest
from hypothesis import given, strategies as st

from repro.graph import bitset

small_sets = st.sets(st.integers(0, 30), max_size=12)


class TestSingleton:
    def test_singleton_is_power_of_two(self):
        assert bitset.singleton(0) == 1
        assert bitset.singleton(3) == 8

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            bitset.singleton(-1)


class TestFullSet:
    def test_full_set_contains_exactly_first_n(self):
        assert bitset.full_set(0) == bitset.EMPTY
        assert bitset.to_list(bitset.full_set(4)) == [0, 1, 2, 3]

    @given(st.integers(0, 64))
    def test_full_set_cardinality(self, n):
        assert bitset.bit_count(bitset.full_set(n)) == n

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            bitset.full_set(-1)


class TestRoundTrips:
    @given(small_sets)
    def test_from_iterable_to_list_round_trip(self, indices):
        assert bitset.to_list(bitset.from_iterable(indices)) == sorted(indices)

    @given(small_sets)
    def test_bit_count_matches_set_size(self, indices):
        assert bitset.bit_count(bitset.from_iterable(indices)) == len(indices)


class TestBitCountDispatch:
    """The import-time native/portable popcount dispatch (Python 3.9 floor)."""

    def test_dispatch_picked_the_native_implementation_when_available(self):
        if hasattr(int, "bit_count"):
            assert bitset.bit_count is bitset._bit_count_native
        else:
            assert bitset.bit_count is bitset._bit_count_portable

    @given(st.integers(0, 2**80))
    def test_portable_and_native_implementations_agree(self, value):
        portable = bitset._bit_count_portable(value)
        assert portable == bitset.bit_count(value)
        if hasattr(int, "bit_count"):
            assert portable == bitset._bit_count_native(value)

    @given(small_sets)
    def test_portable_spelling_matches_set_size(self, indices):
        value = bitset.from_iterable(indices)
        assert bitset._bit_count_portable(value) == len(indices)

    @given(small_sets)
    def test_iter_bits_ascending(self, indices):
        listed = list(bitset.iter_bits(bitset.from_iterable(indices)))
        assert listed == sorted(listed)


class TestExtremes:
    def test_lowest_and_highest_index(self):
        value = bitset.from_iterable({2, 5, 9})
        assert bitset.lowest_index(value) == 2
        assert bitset.highest_index(value) == 9
        assert bitset.lowest_bit(value) == 4

    def test_lowest_of_empty_raises(self):
        with pytest.raises(ValueError):
            bitset.lowest_index(bitset.EMPTY)

    def test_highest_of_empty_raises(self):
        with pytest.raises(ValueError):
            bitset.highest_index(bitset.EMPTY)

    def test_lowest_bit_of_empty_is_zero(self):
        assert bitset.lowest_bit(bitset.EMPTY) == 0

    def test_highest_bit(self):
        value = bitset.from_iterable({2, 5, 9})
        assert bitset.highest_bit(value) == bitset.singleton(9)

    def test_highest_bit_of_empty_is_zero(self):
        assert bitset.highest_bit(bitset.EMPTY) == 0

    @given(small_sets.filter(bool))
    def test_highest_bit_matches_highest_index(self, indices):
        value = bitset.from_iterable(indices)
        assert bitset.highest_bit(value) == bitset.singleton(
            bitset.highest_index(value)
        )


class TestSetAlgebra:
    @given(small_sets, small_sets)
    def test_is_subset_matches_python_sets(self, a, b):
        assert bitset.is_subset(
            bitset.from_iterable(a), bitset.from_iterable(b)
        ) == a.issubset(b)

    @given(small_sets, small_sets)
    def test_without_matches_difference(self, a, b):
        result = bitset.without(bitset.from_iterable(a), bitset.from_iterable(b))
        assert bitset.to_list(result) == sorted(a - b)

    @given(small_sets, st.integers(0, 30))
    def test_contains(self, indices, probe):
        assert bitset.contains(bitset.from_iterable(indices), probe) == (
            probe in indices
        )


class TestSubsetEnumeration:
    @given(st.sets(st.integers(0, 9), min_size=1, max_size=6))
    def test_iter_subsets_enumerates_all_nonempty_subsets(self, indices):
        value = bitset.from_iterable(indices)
        subsets = list(bitset.iter_subsets(value))
        assert len(subsets) == 2 ** len(indices) - 1
        assert len(set(subsets)) == len(subsets)
        assert all(bitset.is_subset(s, value) for s in subsets)
        assert subsets[0] == value  # the improper subset comes first

    def test_iter_subsets_of_empty_is_empty(self):
        assert list(bitset.iter_subsets(0)) == []


class TestFormatting:
    def test_format_set(self):
        assert bitset.format_set(bitset.from_iterable({0, 2})) == "{R0, R2}"

    def test_format_set_custom_prefix(self):
        assert bitset.format_set(1, prefix="T") == "{T0}"

    def test_format_empty(self):
        assert bitset.format_set(0) == "{}"
