"""Tests for QueryGraph: construction, neighborhoods, connectivity."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import DisconnectedGraphError, GraphError
from repro.graph import bitset
from repro.graph.query_graph import QueryGraph
from tests.conftest import connected_graphs


class TestConstruction:
    def test_basic_properties(self, chain5):
        assert chain5.n_vertices == 5
        assert chain5.all_vertices == 0b11111
        assert (0, 1) in chain5.edges
        assert chain5.has_edge(1, 2)
        assert not chain5.has_edge(0, 4)

    def test_duplicate_and_reversed_edges_normalize(self):
        graph = QueryGraph(3, [(0, 1), (1, 0), (1, 2), (1, 2)])
        assert graph.edges == frozenset({(0, 1), (1, 2)})

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            QueryGraph(3, [(1, 1)])

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(GraphError):
            QueryGraph(3, [(0, 3)])

    def test_zero_vertices_rejected(self):
        with pytest.raises(GraphError):
            QueryGraph(0, [])

    def test_equality_and_hash(self):
        a = QueryGraph(3, [(0, 1), (1, 2)])
        b = QueryGraph(3, [(1, 2), (0, 1)])
        assert a == b
        assert hash(a) == hash(b)
        assert a != QueryGraph(3, [(0, 1)])

    def test_repr_mentions_edges(self):
        assert "edges=" in repr(QueryGraph(2, [(0, 1)]))


class TestNeighborhood:
    def test_single_vertex(self, chain5):
        assert chain5.neighborhood(0b00001) == 0b00010
        assert chain5.neighborhood(0b00100) == 0b01010

    def test_of_set_excludes_members(self, chain5):
        # N({1, 2}) = {0, 3}
        assert chain5.neighborhood(0b00110) == 0b01001

    def test_restricted_to_within(self, chain5):
        assert chain5.neighborhood(0b00110, within=0b01000) == 0b01000
        assert chain5.neighborhood(0b00110, within=0b10000) == 0

    def test_star_hub_sees_all_leaves(self, star5):
        assert star5.neighborhood(0b00001) == 0b11110

    def test_empty_set_has_empty_neighborhood(self, chain5):
        assert chain5.neighborhood(0) == 0


class TestConnectivity:
    def test_connected_subsets_of_chain(self, chain5):
        assert chain5.is_connected(0b00111)
        assert not chain5.is_connected(0b00101)  # {0, 2}: gap at 1
        assert chain5.is_connected(0b00001)
        assert not chain5.is_connected(0)

    def test_connected_components(self, chain5):
        parts = chain5.connected_components(0b11011)  # {0,1} and {3,4}
        assert sorted(parts) == [0b00011, 0b11000]

    def test_components_of_connected_set_is_single(self, chain5):
        assert chain5.connected_components(0b00111) == [0b00111]

    def test_are_connected(self, chain5):
        assert chain5.are_connected(0b00011, 0b00100)
        assert not chain5.are_connected(0b00001, 0b10000)

    def test_require_connected_raises(self, chain5):
        with pytest.raises(DisconnectedGraphError):
            chain5.require_connected(0b00101)
        chain5.require_connected(0b00011)  # no raise

    @given(connected_graphs())
    def test_full_vertex_set_is_connected(self, graph):
        assert graph.is_connected(graph.all_vertices)

    @given(connected_graphs(), st.integers(0, 2**8 - 1))
    def test_components_partition_the_subset(self, graph, raw):
        subset = raw & graph.all_vertices
        parts = graph.connected_components(subset)
        union = 0
        for part in parts:
            assert graph.is_connected(part)
            assert union & part == 0
            union |= part
        assert union == subset


class TestEdgeIteration:
    def test_edges_between(self, cycle5):
        between = set(cycle5.edges_between(0b00011, 0b11100))
        assert between == {(1, 2), (0, 4)}

    def test_edges_within(self, cycle5):
        inside = set(cycle5.edges_within(0b00111))
        assert inside == {(0, 1), (1, 2)}


class TestRelabel:
    def test_relabel_reverses_chain(self, chain5):
        relabeled = chain5.relabel([4, 3, 2, 1, 0])
        assert relabeled.edges == chain5.edges  # chain is symmetric

    def test_relabel_moves_star_hub(self, star5):
        relabeled = star5.relabel([4, 0, 1, 2, 3])
        assert relabeled.neighborhood(1 << 4) == 0b01111

    def test_relabel_rejects_non_permutation(self, chain5):
        with pytest.raises(GraphError):
            chain5.relabel([0, 0, 1, 2, 3])

    @given(connected_graphs(max_vertices=6))
    def test_relabel_identity_is_noop(self, graph):
        assert graph.relabel(list(range(graph.n_vertices))) == graph
