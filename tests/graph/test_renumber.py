"""Tests for the advancement-6 renumbering helpers."""

from hypothesis import given, strategies as st

from repro.graph import bitset
from repro.graph.renumber import (
    bfs_leaf_order,
    invert_mapping,
    remap_bitset,
    renumber_mapping,
)
from repro.plans.join_tree import JoinNode, LeafNode


def _leaf(i):
    return LeafNode(i, 10.0)


def _join(left, right):
    return JoinNode(left, right, cardinality=10.0, operator_cost=1.0)


class TestBfsLeafOrder:
    def test_left_deep_tree(self):
        # ((0 x 1) x 2): BFS visits the root, then (0 x 1), then leaf 2.
        tree = _join(_join(_leaf(0), _leaf(1)), _leaf(2))
        assert bfs_leaf_order(tree) == [2, 0, 1]

    def test_bushy_tree(self):
        tree = _join(_join(_leaf(0), _leaf(1)), _join(_leaf(2), _leaf(3)))
        assert bfs_leaf_order(tree) == [0, 1, 2, 3]

    def test_single_leaf(self):
        assert bfs_leaf_order(_leaf(4)) == [4]


class TestRenumberMapping:
    def test_is_a_permutation(self):
        tree = _join(_join(_leaf(2), _leaf(0)), _leaf(1))
        mapping = renumber_mapping(tree, 3)
        assert sorted(mapping) == [0, 1, 2]

    def test_bfs_order_gets_small_indices(self):
        tree = _join(_join(_leaf(2), _leaf(0)), _leaf(1))
        # BFS leaf order: 1, 2, 0 -> new indices 1->0, 2->1, 0->2.
        assert renumber_mapping(tree, 3) == [2, 0, 1]

    def test_missing_relations_get_trailing_indices(self):
        mapping = renumber_mapping(_leaf(1), 3)
        assert mapping[1] == 0
        assert sorted(mapping) == [0, 1, 2]


class TestInvertMapping:
    @given(st.permutations(list(range(6))))
    def test_inverse_composes_to_identity(self, mapping):
        inverse = invert_mapping(mapping)
        assert [inverse[mapping[i]] for i in range(6)] == list(range(6))


class TestRemapBitset:
    def test_simple_remap(self):
        # vertices {0, 2} under mapping [2, 0, 1] -> {2, 1}
        assert remap_bitset(0b101, [2, 0, 1]) == 0b110

    @given(
        st.permutations(list(range(8))),
        st.integers(0, 2**8 - 1),
    )
    def test_remap_preserves_cardinality_and_inverts(self, mapping, value):
        remapped = remap_bitset(value, mapping)
        assert bitset.bit_count(remapped) == bitset.bit_count(value)
        assert remap_bitset(remapped, invert_mapping(mapping)) == value
