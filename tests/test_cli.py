"""Tests for the repro-optimize CLI."""

import json

import pytest

from repro.cli import main
from repro.io import save_query
from repro.workload.generator import generate_query


class TestGeneratedQueries:
    def test_text_output(self, capsys):
        assert main(["--family", "chain", "--relations", "5", "--seed", "1"]) == 0
        output = capsys.readouterr().out
        assert "TDMcC_APCBI" in output
        assert "cost" in output
        assert "Scan" in output

    def test_json_output(self, capsys):
        assert main(
            ["--family", "cycle", "--relations", "5", "--seed", "2", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["algorithm"] == "TDMcC_APCBI"
        assert payload["cost"] > 0
        assert "plan" in payload and "stats" in payload

    def test_verification_flag(self, capsys):
        assert main(
            [
                "--family", "acyclic", "--relations", "6", "--seed", "3",
                "--verify", "--json",
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["verified_against_dpccp"] is True

    @pytest.mark.parametrize("pruning", ["none", "apcb", "apcbi_opt"])
    def test_pruning_choices(self, capsys, pruning):
        assert main(
            [
                "--family", "chain", "--relations", "5", "--seed", "4",
                "--pruning", pruning,
            ]
        ) == 0

    @pytest.mark.parametrize("heuristic", ["quickpick", "ikkbz"])
    def test_heuristic_choices(self, capsys, heuristic):
        assert main(
            [
                "--family", "cyclic", "--relations", "6", "--seed", "5",
                "--heuristic", heuristic, "--verify",
            ]
        ) == 0


class TestQueryDocuments:
    def test_optimizes_a_document(self, tmp_path, capsys):
        query = generate_query("cyclic", 6, seed=11)
        path = tmp_path / "query.json"
        save_query(query, path)
        assert main(["--query", str(path), "--verify"]) == 0
        assert "verified against DPccp: OK" in capsys.readouterr().out

    def test_missing_file_fails_cleanly(self, tmp_path, capsys):
        assert main(["--query", str(tmp_path / "nope.json")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_invalid_document_fails_cleanly(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"relations": [], "joins": []}))
        assert main(["--query", str(path)]) == 1
        assert "error:" in capsys.readouterr().err


class TestViaService:
    def test_text_output_reports_serving_metadata(self, capsys):
        assert main(
            [
                "--family", "chain", "--relations", "5", "--seed", "1",
                "--via-service",
            ]
        ) == 0
        output = capsys.readouterr().out
        assert "[via service]" in output
        assert "service    :" in output
        assert "retries" in output

    def test_json_output_carries_service_section(self, capsys):
        assert main(
            [
                "--family", "cycle", "--relations", "5", "--seed", "2",
                "--via-service", "--json",
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["service"]["attempts"] == 1
        assert payload["service"]["retries"] == 0
        assert payload["cost"] > 0

    def test_service_plan_matches_direct_run(self, capsys):
        argv = ["--family", "acyclic", "--relations", "6", "--seed", "9", "--json"]
        assert main(argv) == 0
        direct = json.loads(capsys.readouterr().out)
        assert main(argv + ["--via-service"]) == 0
        served = json.loads(capsys.readouterr().out)
        assert served["plan"] == direct["plan"]
        got = repr(served["cost"])
        want = repr(direct["cost"])
        assert got == want

    def test_deadline_flows_through_the_service(self, capsys):
        assert main(
            [
                "--family", "chain", "--relations", "5", "--seed", "1",
                "--via-service", "--deadline-ms", "60000",
            ]
        ) == 0
        assert "[via service]" in capsys.readouterr().out

    def test_sharded_service_matches_direct_run(self, capsys):
        argv = ["--family", "star", "--relations", "5", "--seed", "4", "--json"]
        assert main(argv) == 0
        direct = json.loads(capsys.readouterr().out)
        assert main(argv + ["--via-service", "--shards", "2"]) == 0
        served = json.loads(capsys.readouterr().out)
        assert served["plan"] == direct["plan"]
        assert repr(served["cost"]) == repr(direct["cost"])
        assert served["service"]["shard"] in (0, 1)
